"""Shared-lattice evaluation of residual-sensitivity profiles.

Residual sensitivity (Equations 19–21 of the paper) needs the boundary
multiplicity ``T_F(I)`` of *every* residual subset ``F`` in a lattice that
is exponential in the number of private atoms.  Evaluating each subset in
isolation — the reference path of
:meth:`repro.sensitivity.residual.ResidualSensitivity.multiplicities_reference`
— multiplies work that the subsets overwhelmingly share:

* a disconnected residual factorizes into **connected components** whose
  boundaries are disjoint, so ``T_F`` is the product of the per-component
  maxima (see :func:`repro.engine.aggregates.combine_component_results`) —
  and the *same* component recurs across dozens of subsets of the lattice;
* components that are **isomorphic up to variable renaming** (ubiquitous
  under self-joins: every single-atom residual of the triangle query is the
  same query shape) have identical multiplicities on every instance.

:func:`evaluate_profile` therefore plans the whole lattice up front:
every subset is decomposed once, each *structurally distinct* component is
evaluated exactly once (isomorphism detected through a conservative
canonical signature in the spirit of
:func:`repro.engine.canonical.canonical_query_key`), and per-subset results
are assembled from the memoized component results.  Independent component
evaluations can optionally fan out over a thread pool (``parallelism=``) or
— because components are pure functions of relation snapshots — over a
shared **process pool** that escapes the GIL entirely
(``parallelism_mode="process"``; see :mod:`repro.engine.procpool`).
``parallelism_mode="auto"`` picks the process pool for large lattices
(:data:`AUTO_PROCESS_THRESHOLD` pending representatives) and threads
otherwise.  Workers return each result with a factorization-counter delta
that is merged into the parent's scope, so :class:`ProfileStats` is
invariant across serial/thread/process evaluation.

The evaluator is *result-identical* to the per-subset reference path:
value, exactness flag and dropped-predicate multiset agree on every subset
(the ``lattice-profile`` differential-fuzz check in :mod:`repro.qa.runner`
enforces this on both backends for every generated workload).  Components
whose evaluation depends on more than their own shape — residuals with
boundary-crossing comparison predicates (the Section 5.2 augmented-domain
path) or generic predicates — are never shared structurally, only by
identical atom sets.

Sharing can additionally persist *across* runs through an optional
``component_cache``: entries are keyed by the component's exact atoms plus
the **epochs** of the relations the component actually reads
(:meth:`repro.data.database.Database.epochs`), so a delta mutation of
relation ``R`` (see ``docs/mutation.md``) invalidates exactly the entries
touching ``R`` — untouched components come back as cache hits and only the
changed ones are re-evaluated.  Components on the augmented-domain path
read the whole database's active domain, so their entries are keyed on the
full epoch vector.
"""

from __future__ import annotations

import pickle
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from repro.data.database import Database
from repro.engine.aggregates import (
    DEFAULT_MAX_ENUMERATION,
    MultiplicityResult,
    boundary_multiplicity,
    combine_component_results,
)
from repro.engine.backend import ExecutionBackend, get_backend
from repro.engine.canonical import _predicate_key, _term_key
from repro.engine.columnar import (
    adopt_factorization_scope,
    current_factorization_scope,
    factorization_counter_scope,
    merge_factorization_delta,
)
from repro.engine.procpool import (
    build_component_task,
    evaluate_component_task,
    get_process_pool,
)
from repro.exceptions import EvaluationError
from repro.obs.tracing import span as obs_span
from repro.query.atoms import Variable
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import QueryHypergraph
from repro.query.residual import ResidualQuery, residual_query

__all__ = [
    "AUTO_PROCESS_THRESHOLD",
    "LatticeProfile",
    "PARALLELISM_MODES",
    "ProfileStats",
    "evaluate_profile",
]

#: The accepted ``parallelism_mode`` values (``None`` means ``"thread"``).
PARALLELISM_MODES = ("thread", "process", "auto")

#: ``parallelism_mode="auto"`` switches from threads to the process pool
#: once this many representatives are pending evaluation: below it the
#: per-task pickling/dispatch overhead dominates, above it escaping the GIL
#: on the pure-Python orchestration wins.  Tune per deployment by passing
#: an explicit mode instead.
AUTO_PROCESS_THRESHOLD = 8


@dataclass(frozen=True)
class ProfileStats:
    """Work-sharing diagnostics of one :func:`evaluate_profile` run.

    Attributes
    ----------
    subsets_total:
        Number of lattice subsets the profile covers.
    components_total:
        Component references across all subsets (what the per-subset
        reference path would evaluate).
    components_evaluated:
        Distinct component evaluations actually run.
    component_hits:
        Within-run reuses (a component recurring in another subset, or an
        isomorphic twin folded onto its representative).
    component_cache_hits:
        Representatives answered from the cross-run ``component_cache``
        (epoch-keyed; zero when no cache is supplied).  Together:
        ``components_total == components_evaluated + component_hits +
        component_cache_hits``.
    factorization_hits / factorization_misses:
        This run's per-(relation, column) factorization-cache events,
        counted through a context-local scope
        (:func:`repro.engine.columnar.factorization_counter_scope`) — exact
        even when unrelated evaluations run concurrently in the process.
    """

    subsets_total: int
    components_total: int
    components_evaluated: int
    component_hits: int
    factorization_hits: int
    factorization_misses: int
    component_cache_hits: int = 0

    def to_dict(self) -> dict[str, int]:
        """A JSON-serialisable view (for reports, ``--json`` and ``/stats``)."""
        return {
            "subsets_total": self.subsets_total,
            "components_total": self.components_total,
            "components_evaluated": self.components_evaluated,
            "component_hits": self.component_hits,
            "component_cache_hits": self.component_cache_hits,
            "factorization_hits": self.factorization_hits,
            "factorization_misses": self.factorization_misses,
        }


@dataclass(frozen=True)
class LatticeProfile:
    """The full ``{F → T_F}`` profile plus its work-sharing statistics."""

    results: Mapping[frozenset[int], MultiplicityResult]
    stats: ProfileStats


# --------------------------------------------------------------------- #
# Component canonicalization
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ComponentInfo:
    """Structural description of one connected component of the lattice."""

    atoms: tuple[int, ...]
    residual: ResidualQuery
    group_vars: tuple[Variable, ...]
    names: Mapping[Variable, str]
    by_name: Mapping[str, Variable]
    signature: tuple | None
    pred_keys: tuple[str | None, ...]


def _component_info(query: ConjunctiveQuery, component: frozenset[int]) -> _ComponentInfo:
    residual = residual_query(query, component)
    group_vars = tuple(sorted(residual.boundary_relational, key=lambda v: v.name))
    atoms = tuple(sorted(component))

    names: dict[Variable, str] = {}
    for idx in atoms:
        for term in query.atoms[idx].terms:
            if isinstance(term, Variable) and term not in names:
                names[term] = f"v{len(names)}"
    by_name = {name: var for var, name in names.items()}

    pred_keys = tuple(_predicate_key(p, names) for p in residual.predicates)

    signature: tuple | None
    if any(not p.is_inequality for p in residual.dropped_predicates) or any(
        key is None for key in pred_keys
    ):
        # Section 5.2 domain-ranging (value depends on predicates linking to
        # the outside) or generic predicates (not structurally comparable):
        # share only by identical atom set.
        signature = None
    else:
        atom_keys = tuple(
            (
                query.atoms[idx].relation,
                tuple(_term_key(t, names) for t in query.atoms[idx].terms),
            )
            for idx in atoms
        )
        boundary_key = tuple(sorted(names[v] for v in residual.boundary_relational))
        output_key = (
            ("*",)
            if query.is_full
            else tuple(sorted(names[v] for v in residual.output_variables))
        )
        signature = (atom_keys, boundary_key, output_key, tuple(sorted(pred_keys)))

    return _ComponentInfo(
        atoms=atoms,
        residual=residual,
        group_vars=group_vars,
        names=names,
        by_name=by_name,
        signature=signature,
        pred_keys=pred_keys,
    )


def _translate_result(
    result: MultiplicityResult, source: _ComponentInfo, target: _ComponentInfo
) -> MultiplicityResult:
    """Re-express an isomorphic component's result in the target's variables.

    ``source`` and ``target`` share a canonical signature, so the positional
    variable correspondence (canonical name → variable) is a query
    isomorphism: the value, exactness and strategy carry over verbatim,
    dropped predicates map to the target's own predicate objects through
    their canonical keys, and the witness tuple is re-ordered to the
    target's boundary-variable ordering.
    """
    dropped = []
    if result.dropped_predicates:
        target_by_key: dict[str, list[int]] = {}
        for idx, key in enumerate(target.pred_keys):
            target_by_key.setdefault(key, []).append(idx)
        consumed: dict[str, int] = {}
        source_preds = list(source.residual.predicates)
        for pred in result.dropped_predicates:
            source_idx = next(
                i for i, p in enumerate(source_preds) if p is pred or p == pred
            )
            key = source.pred_keys[source_idx]
            position = consumed.get(key, 0)
            consumed[key] = position + 1
            dropped.append(target.residual.predicates[target_by_key[key][position]])

    witness = result.witness
    if witness is not None:
        source_index = {var: i for i, var in enumerate(source.group_vars)}
        witness = tuple(
            witness[source_index[source.by_name[target.names[var]]]]
            for var in target.group_vars
        )

    return replace(
        result,
        witness=witness,
        boundary=target.group_vars,
        dropped_predicates=tuple(dropped),
    )


# --------------------------------------------------------------------- #
# Cross-run component caching
# --------------------------------------------------------------------- #
_MISS = object()


def _component_cache_key(
    query: ConjunctiveQuery,
    database: Database,
    info: _ComponentInfo,
    scope: tuple,
    strategy: str,
    max_enumeration: int | None,
    backend_name: str,
) -> tuple:
    """Cache key pinning everything a component's result depends on.

    The atoms are recorded with their literal terms (not the canonical
    signature) so a hit is guaranteed to come from a textually identical
    component of a query under the same ``scope`` — the stored result's
    variable and predicate objects then compare equal to this run's rebuilt
    residual, and :func:`_translate_result` / assembly work unchanged.
    Residual and dropped predicates are keyed by ``repr`` so generic
    predicates (whose canonical key is ``None``) still disambiguate.
    """
    atoms_key = tuple(
        (query.atoms[idx].relation, tuple(repr(t) for t in query.atoms[idx].terms))
        for idx in info.atoms
    )
    preds_key = (
        tuple(repr(p) for p in info.residual.predicates),
        tuple(repr(p) for p in info.residual.dropped_predicates),
    )
    if any(not p.is_inequality for p in info.residual.dropped_predicates):
        # Section 5.2 augmented-domain path: the boundary value ranges over
        # the *whole* database's active domain, so any relation's mutation
        # can change the result — key on the full epoch vector.
        epochs = tuple(sorted(database.epochs().items()))
    else:
        names = {query.atoms[idx].relation for idx in info.atoms}
        epochs = tuple(sorted((n, database.relation(n).epoch) for n in names))
    return (scope, strategy, max_enumeration, backend_name, atoms_key, preds_key, epochs)


# --------------------------------------------------------------------- #
# Process-pool fan-out
# --------------------------------------------------------------------- #
def _evaluate_pending_process(
    query: ConjunctiveQuery,
    database: Database,
    pending: list[frozenset[int]],
    infos: Mapping[frozenset[int], _ComponentInfo],
    *,
    strategy: str,
    max_enumeration: int | None,
    exec_backend: ExecutionBackend,
    parallelism: int | None,
    evaluate,
) -> dict[frozenset[int], MultiplicityResult]:
    """Ship pending representatives to the shared process pool.

    Each task carries only the rows of the relations its component actually
    reads (elimination never touches the others) — except augmented-domain
    components (non-inequality dropped predicates), whose value ranges over
    the whole database's active domain and which therefore ship everything.
    Tasks that fail to pickle (generic predicates wrapping closures, rows
    holding unpicklable values) fall back to in-parent evaluation.  Worker
    factorization deltas are merged into this context's counter scopes so
    the profile's stats match serial evaluation; a component failure
    cancels queued siblings and propagates promptly.
    """
    tasks: dict[frozenset[int], object] = {}
    unpicklable: list[frozenset[int]] = []
    for component in pending:
        info = infos[component]
        if any(not p.is_inequality for p in info.residual.dropped_predicates):
            names = None  # Section 5.2: ranges over the full active domain
        else:
            names = {query.atoms[idx].relation for idx in info.atoms}
        task = build_component_task(
            query,
            database,
            component,
            relation_names=names,
            strategy=strategy,
            max_enumeration=max_enumeration,
            backend_name=exec_backend.name,
        )
        try:
            pickle.dumps(task)
        except Exception:
            unpicklable.append(component)
        else:
            tasks[component] = task

    fresh: dict[frozenset[int], MultiplicityResult] = {}
    futures: dict = {}
    if tasks:
        pool = get_process_pool(parallelism)
        futures = {
            pool.submit(evaluate_component_task, task): component
            for component, task in tasks.items()
        }
    # In-parent fallbacks run while the workers chew on the shipped tasks.
    for component in unpicklable:
        fresh[component] = evaluate(component)
    if futures:
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        failure = next((f.exception() for f in done if f.exception() is not None), None)
        if failure is not None:
            for future in not_done:
                future.cancel()
            raise failure
        for future, component in futures.items():
            result, delta = future.result()
            merge_factorization_delta(delta["hits"], delta["misses"])
            fresh[component] = result
    return {component: fresh[component] for component in pending}


# --------------------------------------------------------------------- #
# The evaluator
# --------------------------------------------------------------------- #
def evaluate_profile(
    query: ConjunctiveQuery,
    database: Database,
    subsets: Iterable[Iterable[int]],
    *,
    strategy: str = "auto",
    max_enumeration: int | None = DEFAULT_MAX_ENUMERATION,
    backend: str | ExecutionBackend | None = None,
    parallelism: int | None = None,
    parallelism_mode: str | None = None,
    component_cache=None,
    cache_scope: tuple = (),
) -> LatticeProfile:
    """Evaluate ``T_F(I)`` for every subset ``F`` in one shared pass.

    Parameters
    ----------
    query / database:
        The parent conjunctive query and the instance ``I``.
    subsets:
        The kept-atom subsets the profile must cover (typically
        :meth:`~repro.sensitivity.residual.ResidualSensitivity.required_subsets`).
    strategy / max_enumeration / backend:
        Forwarded to :func:`repro.engine.aggregates.boundary_multiplicity`.
        ``strategy="enumerate"`` deliberately bypasses all sharing (the
        exact-enumeration path does not decompose residuals either) and
        evaluates per subset.
    parallelism:
        Fan independent component evaluations out over a worker pool of
        this size.  In the default ``"thread"`` mode ``None``/``0``/``1``
        evaluates serially; in ``"process"`` mode it sizes the shared pool
        (``None``/``0``/``1`` meaning the per-core default of
        :func:`repro.engine.procpool.default_process_workers`).  Results
        are identical either way.
    parallelism_mode:
        ``"thread"`` (the default when ``None``) fans out over an
        in-process thread pool — cheap, but GIL-bound on the pure-Python
        sections.  ``"process"`` ships pending representatives to the
        shared :mod:`repro.engine.procpool` worker pool as picklable task
        specs; components whose task fails to pickle (e.g. generic
        predicates wrapping closures) quietly evaluate in-parent.
        ``"auto"`` picks the process pool when at least
        :data:`AUTO_PROCESS_THRESHOLD` representatives are pending and
        threads otherwise.  Profiles and stats are identical across modes
        (only the factorization hit/miss *split* may shift toward misses in
        process mode while worker caches warm; the total is invariant).
        ``strategy="enumerate"`` evaluates serially regardless of mode.
    component_cache / cache_scope:
        Optional cross-run memo table for representative components —
        anything with the :class:`repro.service.cache.LRUCache` ``get(key,
        default)`` / ``put(key, value)`` shape.  Entries embed the epochs of
        the relations each component reads (see the module docstring), so
        after a delta mutation only the components touching mutated
        relations re-evaluate.  ``cache_scope`` namespaces entries (the
        serving layer passes ``(name, version, plan_key)``) so distinct
        registrations never collide even if their relation epochs do.

    Returns
    -------
    LatticeProfile
        Per-subset :class:`~repro.engine.aggregates.MultiplicityResult`
        values (in ``subsets`` order) plus sharing statistics.
    """
    if parallelism_mode is not None and parallelism_mode not in PARALLELISM_MODES:
        raise EvaluationError(
            f"unknown parallelism_mode {parallelism_mode!r}; "
            f"expected one of {PARALLELISM_MODES}"
        )
    exec_backend = get_backend(backend)
    subset_list = [frozenset(s) for s in subsets]
    # The factorization counters are read through a context-local scope so
    # the per-profile delta is exact even when other services/threads are
    # evaluating concurrently in this process; the span is a no-op unless a
    # request-scoped trace is active (see repro.obs.tracing).
    with obs_span(
        "profile.evaluate", subsets=len(subset_list), backend=exec_backend.name
    ), factorization_counter_scope() as fact_counters:
        return _evaluate_profile_scoped(
            query,
            database,
            subset_list,
            strategy=strategy,
            max_enumeration=max_enumeration,
            exec_backend=exec_backend,
            parallelism=parallelism,
            parallelism_mode=parallelism_mode,
            fact_counters=fact_counters,
            component_cache=component_cache,
            cache_scope=cache_scope,
        )


def _evaluate_profile_scoped(
    query: ConjunctiveQuery,
    database: Database,
    subset_list: list[frozenset[int]],
    *,
    strategy: str,
    max_enumeration: int | None,
    exec_backend: ExecutionBackend,
    parallelism: int | None,
    parallelism_mode: str | None,
    fact_counters,
    component_cache=None,
    cache_scope: tuple = (),
) -> LatticeProfile:
    """The evaluator body, run inside the counter scope (see above)."""

    def finish(
        results: dict[frozenset[int], MultiplicityResult],
        components_total: int,
        components_evaluated: int,
        cache_hits: int = 0,
    ) -> LatticeProfile:
        fact = fact_counters.snapshot()
        stats = ProfileStats(
            subsets_total=len(subset_list),
            components_total=components_total,
            components_evaluated=components_evaluated,
            component_hits=components_total - components_evaluated - cache_hits,
            factorization_hits=fact["hits"],
            factorization_misses=fact["misses"],
            component_cache_hits=cache_hits,
        )
        return LatticeProfile(results=results, stats=stats)

    def evaluate(kept: Iterable[int]) -> MultiplicityResult:
        return boundary_multiplicity(
            query,
            database,
            kept,
            strategy=strategy,
            max_enumeration=max_enumeration,
            backend=exec_backend,
        )

    if strategy == "enumerate":
        results = {kept: evaluate(kept) for kept in subset_list}
        nonempty = sum(1 for kept in subset_list if kept)
        return finish(results, nonempty, nonempty)

    # Phase 1 — plan: decompose every subset into connected components.
    plans: dict[frozenset[int], list[frozenset[int]]] = {}
    infos: dict[frozenset[int], _ComponentInfo] = {}
    for kept in subset_list:
        if kept in plans:
            continue
        if not kept:
            plans[kept] = []
            continue
        components = [
            frozenset(c) for c in QueryHypergraph(query, kept).connected_components()
        ]
        plans[kept] = components
        for component in components:
            if component not in infos:
                infos[component] = _component_info(query, component)

    # Phase 2 — dedupe: pick one representative per canonical signature.
    representative: dict[frozenset[int], frozenset[int]] = {}
    by_signature: dict[tuple, frozenset[int]] = {}
    for component in sorted(infos, key=lambda c: (len(c), tuple(sorted(c)))):
        signature = infos[component].signature
        if signature is None:
            representative[component] = component
        else:
            representative[component] = by_signature.setdefault(signature, component)

    # Phase 3 — evaluate each representative once (optionally in parallel).
    # Representatives already answered by the epoch-keyed component cache
    # (same scope, same atoms, same relation epochs) skip evaluation
    # entirely; only the remainder runs.
    to_evaluate = sorted(
        set(representative.values()), key=lambda c: (len(c), tuple(sorted(c)))
    )
    cache_keys: dict[frozenset[int], tuple] = {}
    cached: dict[frozenset[int], MultiplicityResult] = {}
    if component_cache is not None:
        for component in to_evaluate:
            key = _component_cache_key(
                query,
                database,
                infos[component],
                cache_scope,
                strategy,
                max_enumeration,
                exec_backend.name,
            )
            cache_keys[component] = key
            hit = component_cache.get(key, _MISS)
            if hit is not _MISS:
                cached[component] = hit
    pending = [c for c in to_evaluate if c not in cached]
    mode = parallelism_mode or "thread"
    if mode == "auto":
        mode = "process" if len(pending) >= AUTO_PROCESS_THRESHOLD else "thread"
    if mode == "process" and pending:
        fresh = _evaluate_pending_process(
            query,
            database,
            pending,
            infos,
            strategy=strategy,
            max_enumeration=max_enumeration,
            exec_backend=exec_backend,
            parallelism=parallelism,
            evaluate=evaluate,
        )
    elif parallelism is not None and parallelism > 1 and len(pending) > 1:
        # Pool workers start with an empty context: re-establish the
        # factorization-counter scope there so parallel evaluation counts
        # exactly like serial evaluation (spans are deliberately not
        # propagated — concurrent child wall times would double-count).
        scope = current_factorization_scope()

        def evaluate_scoped(kept: frozenset[int]) -> MultiplicityResult:
            with adopt_factorization_scope(scope):
                return evaluate(kept)

        # Submit + wait(FIRST_EXCEPTION) rather than pool.map: map surfaces
        # the first failure only after every in-flight sibling finishes and
        # keeps running queued work — here queued siblings are cancelled and
        # the failure propagates as soon as it happens.
        pool = ThreadPoolExecutor(max_workers=parallelism)
        try:
            futures = {pool.submit(evaluate_scoped, kept): kept for kept in pending}
            done, _ = wait(futures, return_when=FIRST_EXCEPTION)
            failure = next(
                (f.exception() for f in done if f.exception() is not None), None
            )
            if failure is not None:
                raise failure
            by_component = {kept: future for future, kept in futures.items()}
            fresh = {kept: by_component[kept].result() for kept in pending}
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
    else:
        fresh = {component: evaluate(component) for component in pending}
    if component_cache is not None:
        for component, result in fresh.items():
            component_cache.put(cache_keys[component], result)
    evaluated = {**cached, **fresh}

    component_results: dict[frozenset[int], MultiplicityResult] = {}
    for component, rep in representative.items():
        if component == rep:
            component_results[component] = evaluated[rep]
        else:
            component_results[component] = _translate_result(
                evaluated[rep], infos[rep], infos[component]
            )

    # Phase 4 — assemble the per-subset results (in the requested order).
    results = {}
    for kept in subset_list:
        components = plans[kept]
        if not components:
            results[kept] = evaluate(kept)  # the T_∅ = 1 convention
        elif len(components) == 1:
            results[kept] = component_results[components[0]]
        else:
            residual = residual_query(query, kept)
            group_vars = tuple(
                sorted(residual.boundary_relational, key=lambda v: v.name)
            )
            results[kept] = combine_component_results(
                residual,
                group_vars,
                [component_results[c] for c in components],
                [query.variables_of(c) for c in components],
            )

    components_total = sum(len(c) for c in plans.values())
    return finish(results, components_total, len(pending), len(cached))
