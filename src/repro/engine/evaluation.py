"""High-level query evaluation: result sets and counting queries.

The DP mechanisms of this library release ``|q(I)|``, the result size of a
conjunctive query.  This module provides that top-level entry point
(:func:`count_query`) together with :func:`evaluate_query`, which returns the
actual result tuples (projections onto the output variables) and is used by
examples and tests.

For predicate-free (or fully-applicable-predicate) queries the count can be
obtained through bucket elimination without materialising the result; when a
predicate cannot be honoured exactly by elimination, the implementation falls
back to exact enumeration (optionally capped).

Counting is delegated to a pluggable :class:`~repro.engine.backend.ExecutionBackend`
(``"python"`` dict-based or ``"numpy"`` columnar); :func:`count_query` is the
thin dispatch layer.
"""

from __future__ import annotations

from repro.data.database import Database
from repro.engine import join as join_engine
from repro.engine.backend import ExecutionBackend, get_backend
from repro.query.cq import ConjunctiveQuery

__all__ = ["evaluate_query", "count_query"]


def evaluate_query(
    query: ConjunctiveQuery,
    database: Database,
    *,
    max_intermediate: int | None = None,
) -> list[tuple]:
    """The distinct result tuples of ``query`` on ``database``.

    Results are projections onto :attr:`ConjunctiveQuery.output_variables`
    (all variables for a full query), returned in an unspecified but
    deterministic-per-run order as plain tuples.
    """
    query.validate_against_schema(database.schema)
    output_vars = query.output_variables
    results: set[tuple] = set()
    for assignment in join_engine.iterate_assignments(
        query, database, max_intermediate=max_intermediate
    ):
        results.add(tuple(assignment[v] for v in output_vars))
    return sorted(results, key=repr)


def count_query(
    query: ConjunctiveQuery,
    database: Database,
    *,
    strategy: str = "auto",
    max_intermediate: int | None = None,
    backend: str | ExecutionBackend | None = None,
) -> int:
    """The result size ``|q(I)|``.

    Parameters
    ----------
    strategy:
        ``"enumerate"`` forces exact backtracking enumeration;
        ``"eliminate"`` forces bucket elimination (raises
        :class:`~repro.exceptions.EvaluationError` if a predicate cannot be
        applied exactly); ``"auto"`` (default) uses elimination when it is
        exact for this query and enumeration otherwise.
    max_intermediate:
        Step cap for the enumeration strategy.
    backend:
        Execution backend name (``"python"``, ``"numpy"``) or instance;
        ``None`` uses the process default (see
        :func:`repro.engine.backend.get_backend`).  Backends return identical
        counts — the choice only affects speed.

    Notes
    -----
    * For a **full** query the count is the number of satisfying
      assignments.
    * For a **non-full** query the count is the number of distinct
      projections onto the output variables — elimination handles this by
      grouping on the output variables and counting non-empty groups.
    """
    return get_backend(backend).count_query(
        query, database, strategy=strategy, max_intermediate=max_intermediate
    )
