"""High-level query evaluation: result sets and counting queries.

The DP mechanisms of this library release ``|q(I)|``, the result size of a
conjunctive query.  This module provides that top-level entry point
(:func:`count_query`) together with :func:`evaluate_query`, which returns the
actual result tuples (projections onto the output variables) and is used by
examples and tests.

For predicate-free (or fully-applicable-predicate) queries the count can be
obtained through bucket elimination without materialising the result; when a
predicate cannot be honoured exactly by elimination, the implementation falls
back to exact enumeration (optionally capped).
"""

from __future__ import annotations

from typing import Sequence

from repro.data.database import Database
from repro.engine import join as join_engine
from repro.engine.elimination import eliminate_group_counts
from repro.exceptions import EvaluationError
from repro.query.cq import ConjunctiveQuery

__all__ = ["evaluate_query", "count_query"]


def evaluate_query(
    query: ConjunctiveQuery,
    database: Database,
    *,
    max_intermediate: int | None = None,
) -> list[tuple]:
    """The distinct result tuples of ``query`` on ``database``.

    Results are projections onto :attr:`ConjunctiveQuery.output_variables`
    (all variables for a full query), returned in an unspecified but
    deterministic-per-run order as plain tuples.
    """
    query.validate_against_schema(database.schema)
    output_vars = query.output_variables
    results: set[tuple] = set()
    for assignment in join_engine.iterate_assignments(
        query, database, max_intermediate=max_intermediate
    ):
        results.add(tuple(assignment[v] for v in output_vars))
    return sorted(results, key=repr)


def count_query(
    query: ConjunctiveQuery,
    database: Database,
    *,
    strategy: str = "auto",
    max_intermediate: int | None = None,
) -> int:
    """The result size ``|q(I)|``.

    Parameters
    ----------
    strategy:
        ``"enumerate"`` forces exact backtracking enumeration;
        ``"eliminate"`` forces bucket elimination (raises
        :class:`EvaluationError` if a predicate cannot be applied exactly);
        ``"auto"`` (default) uses elimination when it is exact for this query
        and enumeration otherwise.
    max_intermediate:
        Step cap for the enumeration strategy.

    Notes
    -----
    * For a **full** query the count is the number of satisfying
      assignments.
    * For a **non-full** query the count is the number of distinct
      projections onto the output variables — elimination handles this by
      grouping on the output variables and counting non-empty groups.
    """
    query.validate_against_schema(database.schema)
    if strategy not in ("auto", "enumerate", "eliminate"):
        raise EvaluationError(f"unknown strategy {strategy!r}")

    if strategy in ("auto", "eliminate"):
        if query.is_full:
            result = eliminate_group_counts(query, database, ())
            if result.is_exact:
                return result.counts.get((), 0)
        else:
            result = eliminate_group_counts(query, database, tuple(query.output_variables))
            if result.is_exact:
                return sum(1 for count in result.counts.values() if count > 0)
        if strategy == "eliminate":
            raise EvaluationError(
                "bucket elimination cannot honour these predicates exactly: "
                f"{result.dropped_predicates!r}; use strategy='enumerate'"
            )

    # Exact enumeration.
    distinct_on: Sequence | None = None
    if not query.is_full:
        distinct_on = tuple(query.output_variables)
    return join_engine.count_assignments(
        query,
        database,
        distinct_on=distinct_on,
        max_intermediate=max_intermediate,
    )
