"""Process-pool evaluation of lattice components.

The per-component orchestration of :func:`repro.engine.profile.evaluate_profile`
is pure Python, so the thread-pool ``parallelism=`` knob is GIL-bound exactly
where the profiler spends its time.  Components, however, are *pure functions
of relation snapshots*: a residual subset's boundary multiplicity depends only
on the query shape and the rows of the relations it reads.  That makes them
ideal shared-nothing units — this module ships them to worker **processes**.

A :class:`ComponentTask` is the picklable task spec: the parent query, the
kept-atom subset, the evaluation knobs, and a snapshot of the rows of every
relation the component reads (tagged with the source database's identity
token and per-relation epochs).  Workers rebuild each relation lazily —
including its :class:`~repro.engine.columnar.ColumnCodes` factorizations —
and keep the rebuilt relations in a small per-worker cache keyed by
``(database token, relation, epoch)``, so a warm worker re-evaluating
components of the same registered database skips both the rebuild and the
re-factorization.  The worker counts its factorization-cache events in a
worker-local scope and returns the snapshot together with the
:class:`~repro.engine.aggregates.MultiplicityResult`; the parent merges the
delta through :func:`repro.engine.columnar.merge_factorization_delta` so
``ProfileStats`` counters stay invariant across serial/thread/process runs
(observability spans are deliberately *not* propagated across the process
boundary — they are flattened into the parent's ``profile.evaluate`` span).

The pool itself is created lazily, once, with the ``spawn`` start method
(the serving layer is heavily threaded; forking a threaded parent can
deadlock on inherited locks) and reused across queries so worker warm-up —
interpreter start, imports, relation rebuilds — amortizes over a serving
session.  :func:`shutdown_process_pool` tears it down; the serving layer
calls it on service close and on ``SIGTERM`` drain.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import threading
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema

__all__ = [
    "ComponentTask",
    "build_component_task",
    "default_process_workers",
    "evaluate_component_task",
    "get_process_pool",
    "shutdown_process_pool",
]


# --------------------------------------------------------------------- #
# Task specs
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ComponentTask:
    """One picklable unit of lattice work: a component plus its data slice.

    ``relations`` carries ``(name, epoch, rows)`` snapshots of exactly the
    relations the component reads (components on the Section 5.2
    augmented-domain path ship the whole database — their value ranges over
    the full active domain).  Relations of the schema that are *not* listed
    are rebuilt empty on the worker, which is sound because the residual
    evaluation never touches them.  ``db_token`` identifies the source
    :class:`~repro.data.database.Database` instance so worker-side relation
    caches distinguish equal-epoch relations of different databases.
    """

    schema: DatabaseSchema
    db_token: int
    relations: tuple[tuple[str, int, tuple[tuple, ...]], ...]
    query: object  # ConjunctiveQuery (untyped to keep imports lazy/acyclic)
    kept: frozenset[int]
    strategy: str
    max_enumeration: int | None
    backend: str | None


def _snapshot_rows(relation: Relation) -> tuple[tuple, ...]:
    """A deterministic row snapshot (stable order ⇒ stable worker rebuilds)."""
    return tuple(sorted(relation.tuples(), key=repr))


def build_component_task(
    query,
    database: Database,
    kept: frozenset[int],
    *,
    relation_names=None,
    strategy: str,
    max_enumeration: int | None,
    backend_name: str | None,
) -> ComponentTask:
    """Build the task spec for one component of ``query`` over ``database``.

    ``relation_names=None`` ships every relation of the schema (the
    augmented-domain case); otherwise only the named relations travel.
    """
    if relation_names is None:
        names = sorted(rel.name for rel in database.schema)
    else:
        names = sorted(set(relation_names))
    relations = tuple(
        (name, database.relation(name).epoch, _snapshot_rows(database.relation(name)))
        for name in names
    )
    return ComponentTask(
        schema=database.schema,
        db_token=database_token(database),
        relations=relations,
        query=query,
        kept=frozenset(kept),
        strategy=strategy,
        max_enumeration=max_enumeration,
        backend=backend_name,
    )


# --------------------------------------------------------------------- #
# Parent-side database identity tokens
# --------------------------------------------------------------------- #
_TOKEN_LOCK = threading.Lock()
_TOKENS: dict[int, int] = {}
_TOKEN_SEQ = itertools.count(1)


def database_token(database: Database) -> int:
    """A process-unique identity token for ``database``.

    :class:`~repro.data.database.Database` defines value equality but no
    hash, so tokens are keyed by object identity; a ``weakref.finalize``
    retires the entry when the instance is collected (before its ``id`` can
    be reused), keeping the registry bounded by the number of *live*
    databases.
    """
    key = id(database)
    with _TOKEN_LOCK:
        token = _TOKENS.get(key)
        if token is None:
            token = next(_TOKEN_SEQ)
            _TOKENS[key] = token
            weakref.finalize(database, _TOKENS.pop, key, None)
        return token


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #
#: Rebuilt relations kept warm per worker, keyed ``(db_token, name, epoch)``.
#: The bound is generous (relations are shipped per component, so a lattice
#: over r relations needs at most r live entries per database) but hard, so
#: a long-lived serving worker cycling through many registrations cannot
#: grow without limit.
_WORKER_RELATION_LIMIT = 64
_WORKER_RELATIONS: "OrderedDict[tuple[int, str, int], Relation]" = OrderedDict()


def _worker_relation(
    token: int, name: str, epoch: int, schema: DatabaseSchema, rows
) -> Relation:
    key = (token, name, epoch)
    relation = _WORKER_RELATIONS.get(key)
    if relation is None:
        relation = Relation(schema.relation(name), rows)
        _WORKER_RELATIONS[key] = relation
        while len(_WORKER_RELATIONS) > _WORKER_RELATION_LIMIT:
            _, evicted = _WORKER_RELATIONS.popitem(last=False)
            evicted.release_caches()
    else:
        _WORKER_RELATIONS.move_to_end(key)
    return relation


def _worker_database(task: ComponentTask) -> Database:
    """Rebuild the component's database slice from cached warm relations.

    The :class:`Database` wrapper is fresh per task, but the
    :class:`Relation` instances inside it — and therefore their columnar
    snapshots and factorization caches — are shared across every task of
    the same ``(db_token, epoch)``, which is exactly the warm-worker
    amortization the pool exists for.  Sharing is safe because worker
    processes evaluate one task at a time and evaluation never mutates rows.
    """
    database = Database(task.schema)
    for name, epoch, rows in task.relations:
        database._relations[name] = _worker_relation(
            task.db_token, name, epoch, task.schema, rows
        )
    return database


#: Backend names already warmed up in this worker process.  Spawn-context
#: workers start cold, so the first task naming a backend with one-off
#: warm-up work (the compiled tier's JIT compilation — amortized further by
#: numba's on-disk cache across sibling workers) triggers it here, once,
#: instead of on every component.
_WORKER_WARMED_BACKENDS: set[str] = set()


def _ensure_worker_backend(name: str | None) -> None:
    if name is None or name in _WORKER_WARMED_BACKENDS:
        return
    from repro.engine.backend import get_backend

    backend = get_backend(name)
    backend.ensure_ready()
    _WORKER_WARMED_BACKENDS.add(backend.name)


def evaluate_component_task(task: ComponentTask):
    """Worker entry point: evaluate one component, return result + stats delta.

    Returns ``(MultiplicityResult, {"hits": int, "misses": int})`` where the
    dict is the worker-local factorization-cache delta of exactly this
    evaluation (counted through a scope, so concurrent warm state in the
    worker never pollutes it).
    """
    from repro.engine.aggregates import boundary_multiplicity
    from repro.engine.columnar import factorization_counter_scope

    _ensure_worker_backend(task.backend)
    database = _worker_database(task)
    with factorization_counter_scope() as counters:
        result = boundary_multiplicity(
            task.query,
            database,
            task.kept,
            strategy=task.strategy,
            max_enumeration=task.max_enumeration,
            backend=task.backend,
        )
    return result, counters.snapshot()


# --------------------------------------------------------------------- #
# The shared pool
# --------------------------------------------------------------------- #
_POOL_LOCK = threading.Lock()
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0


def _worker_init() -> None:
    """Workers ignore ``SIGINT``: a terminal Ctrl-C is delivered to the whole
    foreground process group, and shutdown is the parent's job (via
    :func:`shutdown_process_pool`), not a traceback race in every child."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def default_process_workers() -> int:
    """Worker count when ``parallelism`` does not pin one: one per core,
    capped (component fan-out rarely exceeds a handful of representatives,
    and each worker holds warm relation rebuilds in memory)."""
    return max(2, min(os.cpu_count() or 2, 8))


def get_process_pool(workers: int | None = None) -> ProcessPoolExecutor:
    """The lazily-created shared worker pool (grown if ``workers`` exceeds it).

    The pool uses the ``spawn`` start method: the serving layer runs many
    threads, and ``fork`` would duplicate held locks into children.  It is
    created once and reused across queries — tear it down with
    :func:`shutdown_process_pool`.
    """
    global _POOL, _POOL_WORKERS
    wanted = workers if workers is not None and workers > 1 else default_process_workers()
    with _POOL_LOCK:
        if _POOL is not None and _POOL_WORKERS < wanted:
            _POOL.shutdown(wait=False, cancel_futures=True)
            _POOL = None
        if _POOL is None:
            _POOL = ProcessPoolExecutor(
                max_workers=wanted,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_worker_init,
            )
            _POOL_WORKERS = wanted
        return _POOL


def shutdown_process_pool(*, wait: bool = True) -> None:
    """Shut the shared pool down (idempotent; the next use re-creates it).

    Wired into :meth:`repro.service.service.PrivateQueryService.close` and
    the CLI ``serve`` teardown/``SIGTERM`` drain so worker processes never
    outlive the service that warmed them.
    """
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pool, _POOL, _POOL_WORKERS = _POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=wait, cancel_futures=True)
