"""Bucket (variable) elimination for aggregate CQ evaluation.

The boundary multiplicities ``T_E(I)`` behind residual sensitivity are
AJAR/FAQ-style aggregate queries: a COUNT grouped by the boundary variables
followed by a MAX over the groups.  This module implements the COUNT
group-by part with classic *bucket elimination* over count-annotated factors
(sparse dictionaries), which runs in time polynomial in the instance for
bounded elimination width — the polynomial-time claim of Theorem 1.1.

Predicates are applied *exactly* whenever possible: every predicate is
attached to the first factor (initial atom factor, bucket join, or the final
join over the group variables) that contains all of its variables.  A
predicate that never becomes applicable — e.g. an inequality between two
variables that are eliminated in different buckets — is reported back as
*dropped*; the resulting counts are then upper bounds.  Callers that need
exactness fall back to :mod:`repro.engine.join`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.data.database import Database
from repro.exceptions import EvaluationError
from repro.query.atoms import Constant, Variable
from repro.query.cq import ConjunctiveQuery
from repro.query.predicates import Predicate

__all__ = [
    "Factor",
    "EliminationResult",
    "eliminate_group_counts",
    "greedy_elimination_order",
    "order_factors_for_join",
]


def order_factors_for_join(factors):
    """Order factors so each one shares variables with the joined prefix.

    Starts from the smallest factor and greedily prefers connected factors,
    falling back to a cross product only for genuinely disconnected ones.
    Works on any object exposing ``variables`` and ``__len__`` — shared by
    the dict-based and the columnar NumPy engines so predicate-application
    timing stays identical across backends.
    """
    ordered = []
    seen_vars: set[Variable] = set()
    candidates = sorted(factors, key=len)
    while candidates:
        best = None
        for factor in candidates:
            if best is None or (
                bool(set(factor.variables) & seen_vars)
                and not bool(set(best.variables) & seen_vars)
            ):
                best = factor
        candidates.remove(best)
        ordered.append(best)
        seen_vars |= set(best.variables)
    return ordered


def greedy_elimination_order(
    factor_variable_sets: Sequence[set[Variable]],
    internal_variables: Sequence[Variable],
) -> list[Variable]:
    """A min-width-style greedy elimination order over ``internal_variables``.

    Repeatedly picks the variable whose bucket join touches the fewest
    variables (ties broken by variable name, so the order is deterministic).
    Shared by the dict-based and the columnar NumPy elimination engines —
    using the *same* order in both keeps their dropped-predicate bookkeeping,
    and therefore their exactness guarantees, identical.
    """
    order: list[Variable] = []
    remaining = set(internal_variables)
    sim_factors = [set(fvars) for fvars in factor_variable_sets]
    while remaining:
        best_var = None
        best_width = None
        for var in remaining:
            touched: set[Variable] = set()
            for fvars in sim_factors:
                if var in fvars:
                    touched |= fvars
            width = len(touched)
            if best_width is None or (width, str(var.name)) < (best_width, str(best_var.name)):
                best_width = width
                best_var = var
        assert best_var is not None
        order.append(best_var)
        remaining.remove(best_var)
        merged: set[Variable] = set()
        kept = []
        for fvars in sim_factors:
            if best_var in fvars:
                merged |= fvars
            else:
                kept.append(fvars)
        merged.discard(best_var)
        kept.append(merged)
        sim_factors = kept
    return order


@dataclass
class Factor:
    """A count-annotated factor over a tuple of variables.

    ``data`` maps value tuples (aligned with ``variables``) to positive
    integer counts.  Factors are the intermediate objects of bucket
    elimination; initial factors come from atoms (every matching tuple has
    count 1), later factors arise from joins and from summing variables out.
    """

    variables: tuple[Variable, ...]
    data: dict[tuple, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.data)

    def total(self) -> int:
        """Sum of all counts (the scalar obtained by summing out everything)."""
        return sum(self.data.values())

    def project_sum(self, keep: Sequence[Variable]) -> "Factor":
        """Sum out every variable not in ``keep``."""
        keep_vars = tuple(v for v in self.variables if v in set(keep))
        positions = [self.variables.index(v) for v in keep_vars]
        out: dict[tuple, int] = {}
        for key, count in self.data.items():
            new_key = tuple(key[p] for p in positions)
            out[new_key] = out.get(new_key, 0) + count
        return Factor(keep_vars, out)

    def filter_predicates(self, predicates: Sequence[Predicate]) -> "Factor":
        """Keep only rows satisfying all ``predicates`` (must be fully bound).

        Inequality and comparison predicates are compiled to position-based
        checks on the key tuples (the hot path of the graph benchmarks);
        other predicates fall back to dictionary-based evaluation.
        """
        if not predicates:
            return self
        checks = [_compile_predicate(pred, self.variables) for pred in predicates]
        out: dict[tuple, int] = {}
        for key, count in self.data.items():
            if all(check(key) for check in checks):
                out[key] = count
        return Factor(self.variables, out)


def _compile_predicate(predicate: Predicate, variables: tuple[Variable, ...]):
    """Compile a predicate into a fast check on a factor's key tuples.

    Inequality and comparison predicates become closures over tuple positions
    (avoiding per-row dictionary construction); anything else falls back to
    the generic ``Predicate.evaluate`` interface.
    """
    from repro.query.predicates import ComparisonPredicate, InequalityPredicate

    def _operand(term):
        if isinstance(term, Variable):
            position = variables.index(term)
            return lambda key, _p=position: key[_p]
        value = term.value
        return lambda key, _v=value: _v

    if isinstance(predicate, InequalityPredicate):
        left = _operand(predicate.left)
        right = _operand(predicate.right)
        return lambda key: left(key) != right(key)
    if isinstance(predicate, ComparisonPredicate):
        left = _operand(predicate.left)
        right = _operand(predicate.right)
        op = predicate.op
        if op == "<":
            return lambda key: left(key) < right(key)
        if op == "<=":
            return lambda key: left(key) <= right(key)
        if op == ">":
            return lambda key: left(key) > right(key)
        return lambda key: left(key) >= right(key)

    var_list = variables

    def _generic(key):
        return predicate.evaluate(dict(zip(var_list, key)))

    return _generic


def _atom_factor(query: ConjunctiveQuery, database: Database, atom_index: int) -> Factor:
    """The initial factor of one atom: distinct variable bindings with count 1."""
    atom = query.atoms[atom_index]
    relation = database.relation(atom.relation)
    variables = atom.variables
    var_positions = {v: atom.positions_of(v) for v in variables}
    const_positions = [
        (i, term.value) for i, term in enumerate(atom.terms) if isinstance(term, Constant)
    ]
    data: dict[tuple, int] = {}
    for row in relation:
        if any(row[pos] != value for pos, value in const_positions):
            continue
        ok = True
        values = []
        for var in variables:
            positions = var_positions[var]
            value = row[positions[0]]
            if any(row[p] != value for p in positions[1:]):
                ok = False
                break
            values.append(value)
        if ok:
            data[tuple(values)] = 1
    return Factor(variables, data)


def _join_factors(left: Factor, right: Factor) -> Factor:
    """Natural join of two factors, multiplying counts."""
    shared = tuple(v for v in left.variables if v in right.variables)
    left_shared_pos = [left.variables.index(v) for v in shared]
    right_shared_pos = [right.variables.index(v) for v in shared]
    right_extra = tuple(v for v in right.variables if v not in shared)
    right_extra_pos = [right.variables.index(v) for v in right_extra]

    # Index the smaller factor on the shared variables.
    if len(right) < len(left):
        return _join_factors(right, left)

    index: dict[tuple, list[tuple[tuple, int]]] = {}
    for key, count in left.data.items():
        shared_key = tuple(key[p] for p in left_shared_pos)
        index.setdefault(shared_key, []).append((key, count))

    out_vars = left.variables + right_extra
    out: dict[tuple, int] = {}
    for rkey, rcount in right.data.items():
        shared_key = tuple(rkey[p] for p in right_shared_pos)
        matches = index.get(shared_key)
        if not matches:
            continue
        extra_values = tuple(rkey[p] for p in right_extra_pos)
        for lkey, lcount in matches:
            out_key = lkey + extra_values
            out[out_key] = out.get(out_key, 0) + lcount * rcount
    return Factor(out_vars, out)


def _apply_ready_predicates(
    factor: Factor, pending: list[Predicate]
) -> tuple[Factor, list[Predicate]]:
    """Apply (and consume) every pending predicate contained in ``factor``."""
    var_set = frozenset(factor.variables)
    ready = [p for p in pending if p.variables <= var_set]
    if not ready:
        return factor, pending
    remaining = [p for p in pending if p not in ready]
    return factor.filter_predicates(ready), remaining


#: Above this estimated number of joined rows, a two-factor bucket whose
#: shared variables are being summed out switches to the sparse-matrix
#: product fast path (see :func:`_matmul_aggregate`).  The threshold keeps
#: small instances (and therefore the exactness-checking tests) on the exact
#: streaming path while routing the heavy residuals of the graph benchmarks
#: through scipy.
MATMUL_THRESHOLD = 200_000


def _matmul_aggregate(
    left: Factor,
    right: Factor,
    shared: tuple[Variable, ...],
    pending: list[Predicate],
) -> tuple[Factor, list[Predicate]]:
    """Sum out ``shared`` from ``left ⋈ right`` via a sparse matrix product.

    This is the asymptotically cheap way to evaluate the heavy residual
    multiplicities (e.g. the length-3-path residual of the rectangle query),
    where the number of joined rows is huge but the output — keyed by the
    surviving variables of both factors — is small.  Pending predicates whose
    variables all survive are applied to the output; predicates involving the
    summed-out variables cannot be honoured on this path and are left pending
    (the caller reports them as dropped, making the counts upper bounds).
    """
    import numpy as np
    from scipy import sparse

    left_keep = tuple(v for v in left.variables if v not in shared)
    right_keep = tuple(v for v in right.variables if v not in shared)
    out_vars = left_keep + right_keep

    shared_left_pos = [left.variables.index(v) for v in shared]
    shared_right_pos = [right.variables.index(v) for v in shared]
    left_keep_pos = [left.variables.index(v) for v in left_keep]
    right_keep_pos = [right.variables.index(v) for v in right_keep]

    row_ids: dict[tuple, int] = {}
    col_ids: dict[tuple, int] = {}
    mid_ids: dict[tuple, int] = {}

    def _intern(table: dict[tuple, int], key: tuple) -> int:
        identifier = table.get(key)
        if identifier is None:
            identifier = len(table)
            table[key] = identifier
        return identifier

    left_rows, left_mids, left_counts = [], [], []
    for key, count in left.data.items():
        left_rows.append(_intern(row_ids, tuple(key[p] for p in left_keep_pos)))
        left_mids.append(_intern(mid_ids, tuple(key[p] for p in shared_left_pos)))
        left_counts.append(count)
    right_mids, right_cols, right_counts = [], [], []
    for key, count in right.data.items():
        mid_key = tuple(key[p] for p in shared_right_pos)
        if mid_key not in mid_ids:
            continue  # no join partner on the left
        right_mids.append(mid_ids[mid_key])
        right_cols.append(_intern(col_ids, tuple(key[p] for p in right_keep_pos)))
        right_counts.append(count)

    if not left_rows or not right_mids:
        return Factor(out_vars, {}), pending

    left_matrix = sparse.coo_matrix(
        (np.asarray(left_counts, dtype=np.int64), (left_rows, left_mids)),
        shape=(max(1, len(row_ids)), max(1, len(mid_ids))),
    ).tocsr()
    right_matrix = sparse.coo_matrix(
        (np.asarray(right_counts, dtype=np.int64), (right_mids, right_cols)),
        shape=(max(1, len(mid_ids)), max(1, len(col_ids))),
    ).tocsr()
    product = (left_matrix @ right_matrix).tocoo()

    row_keys = {identifier: key for key, identifier in row_ids.items()}
    col_keys = {identifier: key for key, identifier in col_ids.items()}
    out: dict[tuple, int] = {}
    for row, col, value in zip(product.row, product.col, product.data):
        if value:
            out[row_keys[int(row)] + col_keys[int(col)]] = int(value)

    # Apply the pending predicates that survived the projection.
    out_set = frozenset(out_vars)
    post = [p for p in pending if p.variables <= out_set]
    remaining = [p for p in pending if p not in post]
    factor = Factor(out_vars, out)
    if post:
        factor = factor.filter_predicates(post)
    return factor, remaining


def _estimated_join_rows(left: Factor, right: Factor, shared: tuple[Variable, ...]) -> int:
    """Number of rows the join of two factors would produce (exact, cheap)."""
    shared_left_pos = [left.variables.index(v) for v in shared]
    shared_right_pos = [right.variables.index(v) for v in shared]
    left_hist: dict[tuple, int] = {}
    for key in left.data:
        shared_key = tuple(key[p] for p in shared_left_pos)
        left_hist[shared_key] = left_hist.get(shared_key, 0) + 1
    total = 0
    for key in right.data:
        shared_key = tuple(key[p] for p in shared_right_pos)
        total += left_hist.get(shared_key, 0)
    return total


def _join_and_aggregate(
    bucket: list[Factor],
    keep: Sequence[Variable],
    pending: list[Predicate],
) -> tuple[Factor, list[Predicate]]:
    """Stream the natural join of ``bucket``, filter, and sum onto ``keep``.

    The joined rows are never materialised as a dictionary: each row is
    produced by index lookups, checked against every pending predicate whose
    variables the join covers, and immediately accumulated into the output
    keyed by the ``keep`` variables.  This is the hot path of the residual
    multiplicity computation on the graph workloads.

    Two-factor buckets whose shared variables are all being summed out and
    whose estimated join size exceeds :data:`MATMUL_THRESHOLD` are delegated
    to :func:`_matmul_aggregate` (sparse matrix product), trading the
    predicates that involve the summed-out variables for an asymptotically
    cheaper evaluation.
    """
    union_vars: list[Variable] = []
    for factor in bucket:
        for var in factor.variables:
            if var not in union_vars:
                union_vars.append(var)
    union_tuple = tuple(union_vars)
    union_set = frozenset(union_vars)

    # Sparse-matrix fast path for heavy two-factor buckets.
    if len(bucket) == 2:
        keep_set = set(keep)
        shared = tuple(v for v in bucket[0].variables if v in bucket[1].variables)
        if shared and all(v not in keep_set for v in shared):
            estimated = _estimated_join_rows(bucket[0], bucket[1], shared)
            if estimated > MATMUL_THRESHOLD:
                return _matmul_aggregate(bucket[0], bucket[1], shared, pending)

    ready = [p for p in pending if p.variables <= union_set]
    remaining = [p for p in pending if p not in ready]
    checks = [_compile_predicate(pred, union_tuple) for pred in ready]

    keep_vars = tuple(v for v in union_tuple if v in set(keep))
    keep_positions = [union_tuple.index(v) for v in keep_vars]

    # Order the factors so each one (after the first) shares variables with
    # the already-joined prefix whenever possible, then index it on those
    # shared positions.
    ordered: list[Factor] = order_factors_for_join(bucket)

    # Pre-compute, per factor, the positions of its variables inside the union
    # tuple and the positions (within the union prefix) it must match on.
    plans = []
    bound: list[Variable] = []
    for factor in ordered:
        shared = [v for v in factor.variables if v in bound]
        new = [v for v in factor.variables if v not in bound]
        shared_local = [factor.variables.index(v) for v in shared]
        new_local = [factor.variables.index(v) for v in new]
        shared_union = [union_tuple.index(v) for v in shared]
        new_union = [union_tuple.index(v) for v in new]
        index: dict[tuple, list[tuple[tuple, int]]] = {}
        for key, count in factor.data.items():
            shared_key = tuple(key[p] for p in shared_local)
            index.setdefault(shared_key, []).append(
                (tuple(key[p] for p in new_local), count)
            )
        plans.append((shared_union, new_union, index))
        bound.extend(new)

    out: dict[tuple, int] = {}
    row: list = [None] * len(union_tuple)

    def recurse(depth: int, count: int) -> None:
        if depth == len(plans):
            if all(check(row) for check in checks):
                key = tuple(row[p] for p in keep_positions)
                out[key] = out.get(key, 0) + count
            return
        shared_union, new_union, index = plans[depth]
        shared_key = tuple(row[p] for p in shared_union)
        matches = index.get(shared_key)
        if not matches:
            return
        for new_values, factor_count in matches:
            for position, value in zip(new_union, new_values):
                row[position] = value
            recurse(depth + 1, count * factor_count)

    recurse(0, 1)
    return Factor(keep_vars, out), remaining


@dataclass
class EliminationResult:
    """Outcome of :func:`eliminate_group_counts`.

    Attributes
    ----------
    counts:
        Mapping from group-variable value tuples to counts.  Exact if
        ``dropped_predicates`` is empty, otherwise an upper bound obtained by
        ignoring the dropped predicates.
    group_variables:
        The group variables, in the order used for the count keys.
    dropped_predicates:
        Predicates that could not be applied during elimination.
    elimination_order:
        The internal variables in the order they were summed out.
    """

    counts: dict[tuple, int]
    group_variables: tuple[Variable, ...]
    dropped_predicates: tuple[Predicate, ...]
    elimination_order: tuple[Variable, ...]

    @property
    def is_exact(self) -> bool:
        """Whether every predicate was applied (counts are exact)."""
        return not self.dropped_predicates


def eliminate_group_counts(
    query: ConjunctiveQuery,
    database: Database,
    group_variables: Sequence[Variable],
    *,
    atom_indices: Sequence[int] | None = None,
    predicates: Sequence[Predicate] | None = None,
) -> EliminationResult:
    """Group-by counts of a (residual) CQ via bucket elimination.

    Parameters
    ----------
    query, database:
        The query and instance.
    group_variables:
        The variables to group by (they are never eliminated).  An empty
        sequence computes a single global count keyed by ``()``.
    atom_indices:
        Restrict evaluation to these atoms (defaults to all atoms).
    predicates:
        Predicates to apply (defaults to ``query.predicates``); predicates
        mentioning variables outside the selected atoms are ignored here —
        residual classification is the caller's responsibility.

    Returns
    -------
    EliminationResult
        Group counts plus bookkeeping about dropped predicates.
    """
    indices = list(range(query.num_atoms)) if atom_indices is None else list(atom_indices)
    if not indices:
        return EliminationResult({(): 1}, tuple(group_variables), (), ())

    covered_vars = query.variables_of(indices)
    group_vars = tuple(group_variables)
    unknown = [v for v in group_vars if v not in covered_vars]
    if unknown:
        raise EvaluationError(
            f"group variables {sorted(v.name for v in unknown)} do not occur in the "
            "selected atoms"
        )

    pending = [
        p
        for p in (query.predicates if predicates is None else predicates)
        if p.variables <= covered_vars
    ]

    # Build initial factors, applying single-atom predicates immediately.
    factors: list[Factor] = []
    for idx in indices:
        factor = _atom_factor(query, database, idx)
        factor, pending = _apply_ready_predicates(factor, pending)
        factors.append(factor)

    internal = [v for v in covered_vars if v not in group_vars]
    order = greedy_elimination_order([set(f.variables) for f in factors], internal)

    # Actual elimination following the computed order.  Each bucket is joined,
    # filtered and summed out in one streaming pass (no intermediate factor is
    # materialised).
    for var in order:
        bucket = [f for f in factors if var in f.variables]
        others = [f for f in factors if var not in f.variables]
        if not bucket:
            continue
        keep = [v for factor in bucket for v in factor.variables if v != var]
        summed, pending = _join_and_aggregate(bucket, keep, pending)
        factors = others + [summed]

    # Join everything that remains (all over subsets of the group variables
    # plus, possibly, isolated variables from disconnected atoms).
    final, pending = _join_and_aggregate(factors, list(group_vars), pending)

    # Re-order key columns to match the requested group-variable order.
    counts: dict[tuple, int]
    if tuple(final.variables) == group_vars:
        counts = dict(final.data)
    else:
        positions = [final.variables.index(v) for v in group_vars]
        counts = {}
        for key, count in final.data.items():
            new_key = tuple(key[p] for p in positions)
            counts[new_key] = counts.get(new_key, 0) + count

    return EliminationResult(
        counts=counts,
        group_variables=group_vars,
        dropped_predicates=tuple(pending),
        elimination_order=tuple(order),
    )
