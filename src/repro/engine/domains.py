"""Active and augmented active domains for comparison predicates (Section 5.2).

For CQs whose predicates are inequalities and comparisons over an ordered
(integer) domain, the paper shows that the boundary variables realised only
through predicates (``∂q2``) need not range over the full infinite domain:
it suffices to consider the *augmented active domain* ``Z+(q, I)``, which
contains

* every integer appearing in the instance on predicate attributes,
* every constant appearing in a comparison predicate of the query,
* sentinels below and above everything, and
* up to ``2κ`` extra values strictly between each pair of consecutive values
  of the above (κ = number of predicates), because the optimum of ``T_E`` may
  be attained strictly between two active values (Example 5 of the paper).

This module constructs ``Z*(q, I)`` and ``Z+(q, I)``.  Values are assumed to
be integers (the paper's assumption w.l.o.g.); non-integer values appearing
in the data are ignored for augmentation purposes.
"""

from __future__ import annotations

from typing import Iterable

from repro.data.database import Database
from repro.query.atoms import Variable
from repro.query.cq import ConjunctiveQuery
from repro.query.predicates import ComparisonPredicate

__all__ = ["active_domain", "augmented_active_domain", "predicate_variables"]


def predicate_variables(query: ConjunctiveQuery) -> frozenset[Variable]:
    """Variables mentioned by at least one predicate of ``query``."""
    result: set[Variable] = set()
    for pred in query.predicates:
        result |= pred.variables
    return frozenset(result)


def active_domain(
    query: ConjunctiveQuery,
    database: Database,
    variables: Iterable[Variable] | None = None,
) -> set:
    """``Z*(q, I)``: values of the instance on predicate variables, plus query constants.

    Parameters
    ----------
    variables:
        Restrict to values appearing at atom positions bound to these
        variables; defaults to all predicate variables of the query.
    """
    if variables is None:
        target_vars = predicate_variables(query)
    else:
        target_vars = frozenset(variables)

    values: set = set()
    for atom in query.atoms:
        relation = database.relation(atom.relation)
        positions = [
            i
            for i, term in enumerate(atom.terms)
            if isinstance(term, Variable) and term in target_vars
        ]
        if not positions:
            continue
        for row in relation:
            for pos in positions:
                values.add(row[pos])

    for pred in query.predicates:
        if isinstance(pred, ComparisonPredicate):
            values.update(pred.constants)
    return values


def augmented_active_domain(
    query: ConjunctiveQuery,
    database: Database,
    variables: Iterable[Variable] | None = None,
) -> list[int]:
    """``Z+(q, I)``: the augmented active domain of Section 5.2, sorted ascending.

    Between each pair of consecutive integer values of ``Z*(q, I)`` (extended
    with one sentinel below the minimum and one above the maximum), up to
    ``2κ`` intermediate integers are inserted, where ``κ`` is the number of
    predicates of the query.  This is sufficient for the maximum of ``T_E``
    to be attained on the augmented domain (Lemma 5.2).
    """
    base_values = active_domain(query, database, variables)
    integer_values = sorted(v for v in base_values if isinstance(v, int) and not isinstance(v, bool))
    kappa = len(query.predicates)
    if not integer_values:
        # No active values at all: any 2κ+1 distinct integers will do.
        return list(range(0, 2 * kappa + 1))

    # Sentinels: one value clearly below and one clearly above the active range.
    low_sentinel = integer_values[0] - kappa - 1
    high_sentinel = integer_values[-1] + kappa + 1
    extended = [low_sentinel] + integer_values + [high_sentinel]

    augmented: list[int] = []
    for current, nxt in zip(extended, extended[1:]):
        augmented.append(current)
        gap = nxt - current - 1
        if gap <= 0:
            continue
        extra = min(gap, 2 * kappa)
        augmented.extend(current + offset for offset in range(1, extra + 1))
    augmented.append(extended[-1])
    return augmented
