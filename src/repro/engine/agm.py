"""AGM bounds via the fractional edge cover linear program.

The AGM bound (Atserias–Grohe–Marx) states that the output size of a join
``R_1(x_1) ⋈ ... ⋈ R_n(x_n)`` is at most ``∏_i |R_i|^{w_i}`` for any
*fractional edge cover* ``w``: non-negative weights on the atoms such that
every variable is covered with total weight at least one.  Minimising the
exponent ``Σ_i w_i`` (for uniform relation sizes ``N``) gives the classic
``N^{ρ*}`` bound.

The paper uses AGM bounds to turn Theorem 3.5 into a global-sensitivity upper
bound (Section 3.3): ``GS ≤ max_i Σ_{E ⊆ D_i, E ≠ ∅} AGM(q_{\bar E} with the
boundary variables removed)``, where the logical copies of a physical
relation are treated as distinct relations of size ``N``.

This module solves the fractional edge cover LP with ``scipy.optimize.linprog``
and evaluates the resulting bound either symbolically (as an exponent of
``N``) or numerically for concrete relation sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import EvaluationError
from repro.query.atoms import Variable
from repro.query.cq import ConjunctiveQuery

__all__ = ["AGMBound", "fractional_edge_cover", "agm_bound"]


@dataclass(frozen=True)
class AGMBound:
    """The result of a fractional-edge-cover computation.

    Attributes
    ----------
    weights:
        Per-atom fractional cover weights, keyed by atom index.
    rho:
        The cover number ``ρ* = Σ_i w_i`` — the exponent of ``N`` when every
        relation has size ``N``.
    variables:
        The variables that had to be covered.
    """

    weights: tuple[tuple[int, float], ...]
    rho: float
    variables: tuple[Variable, ...]

    def bound(self, sizes: Mapping[int, int] | int) -> float:
        """Evaluate ``∏_i |R_i|^{w_i}`` for concrete sizes.

        Parameters
        ----------
        sizes:
            Either a single integer (every atom's relation has that size) or
            a mapping from atom index to relation size.
        """
        total = 1.0
        for atom_index, weight in self.weights:
            if weight <= 0:
                continue
            size = sizes if isinstance(sizes, int) else sizes[atom_index]
            if size == 0:
                return 0.0
            total *= float(size) ** weight
        return total


def fractional_edge_cover(
    query: ConjunctiveQuery,
    atom_indices: Sequence[int] | None = None,
    ignore_variables: Iterable[Variable] = (),
) -> AGMBound:
    """Solve the fractional edge cover LP for (a sub-join of) ``query``.

    Parameters
    ----------
    query:
        The conjunctive query.
    atom_indices:
        The atoms participating in the join (defaults to all).
    ignore_variables:
        Variables that need not be covered.  The GS bound of Section 3.3
        removes the boundary variables of the residual query (their domain is
        conceptually collapsed to a single value), which is what this
        parameter implements.

    Returns
    -------
    AGMBound
        Optimal weights and the cover number ``ρ*``.

    Raises
    ------
    EvaluationError
        If some variable cannot be covered (it occurs in no selected atom) or
        the LP solver fails.
    """
    indices = list(range(query.num_atoms)) if atom_indices is None else list(atom_indices)
    if not indices:
        return AGMBound(weights=(), rho=0.0, variables=())

    ignored = frozenset(ignore_variables)
    variables = sorted(
        {v for idx in indices for v in query.atom_variables(idx)} - ignored,
        key=lambda v: v.name,
    )
    if not variables:
        return AGMBound(weights=tuple((idx, 0.0) for idx in indices), rho=0.0, variables=())

    num_atoms = len(indices)
    num_vars = len(variables)
    # Constraints: for each variable v, sum of weights of atoms containing v >= 1.
    # linprog uses A_ub @ x <= b_ub, so we negate.
    a_ub = np.zeros((num_vars, num_atoms))
    for row, var in enumerate(variables):
        for col, idx in enumerate(indices):
            if var in query.atom_variables(idx):
                a_ub[row, col] = -1.0
        if not np.any(a_ub[row]):
            raise EvaluationError(
                f"variable {var.name!r} occurs in no selected atom; it cannot be covered"
            )
    b_ub = -np.ones(num_vars)
    cost = np.ones(num_atoms)
    result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * num_atoms, method="highs")
    if not result.success:  # pragma: no cover - highs is reliable on feasible LPs
        raise EvaluationError(f"fractional edge cover LP failed: {result.message}")
    weights = tuple((idx, float(w)) for idx, w in zip(indices, result.x))
    return AGMBound(weights=weights, rho=float(result.fun), variables=tuple(variables))


def agm_bound(
    query: ConjunctiveQuery,
    sizes: Mapping[int, int] | int,
    atom_indices: Sequence[int] | None = None,
    ignore_variables: Iterable[Variable] = (),
) -> float:
    """Convenience wrapper: solve the LP and evaluate the numeric bound."""
    cover = fractional_edge_cover(query, atom_indices, ignore_variables)
    return cover.bound(sizes)
