"""Structural canonicalization of conjunctive queries for cache keys.

The serving layer (:mod:`repro.service`) memoizes residual-query
decompositions and sensitivity profiles across requests.  Both are
*data-independent per query shape*: two queries that differ only in variable
names (or in the orientation of symmetric predicates) have identical counts,
identical residual decompositions and identical sensitivities on every
instance.  :func:`canonical_query_key` maps such queries to the same string
key so the cache can reuse work across clients that spell "the same" query
differently.

The canonical form renames variables to ``v0, v1, ...`` in order of first
appearance across the atoms (atom order is preserved — the key is
*conservative*: equal keys imply equal semantics, but semantically equal
queries with re-ordered atoms may get distinct keys and merely miss the
cache).  Symmetric predicates are normalised:

* ``x != y`` and ``y != x`` serialise identically (operands sorted);
* ``x > y`` is rewritten as ``y < x`` and ``x >= y`` as ``y <= x``.

Queries carrying a :class:`~repro.query.predicates.GenericPredicate` cannot
be canonicalized by value (two distinct callables are incomparable), so
:func:`canonical_query_key` returns ``None`` for them and callers must bypass
the cache.
"""

from __future__ import annotations

from repro.query.atoms import Constant, Term, Variable
from repro.query.cq import ConjunctiveQuery
from repro.query.predicates import (
    ComparisonPredicate,
    InequalityPredicate,
    Predicate,
)

__all__ = ["canonical_query_key", "canonical_variable_order"]


def canonical_variable_order(query: ConjunctiveQuery) -> dict[Variable, str]:
    """Map each variable to its canonical name ``v{i}``.

    Variables are numbered by first appearance in the atoms' term lists, in
    atom order.  Every predicate/output variable necessarily occurs in some
    atom (:class:`ConjunctiveQuery` enforces this), so the mapping is total.
    """
    mapping: dict[Variable, str] = {}
    for atom in query.atoms:
        for term in atom.terms:
            if isinstance(term, Variable) and term not in mapping:
                mapping[term] = f"v{len(mapping)}"
    return mapping


def _term_key(term: Term, names: dict[Variable, str]) -> str:
    if isinstance(term, Variable):
        return names[term]
    value = term.value
    return f"<{type(value).__name__}:{value!r}>"


def _predicate_key(pred: Predicate, names: dict[Variable, str]) -> str | None:
    if isinstance(pred, InequalityPredicate):
        sides = sorted((_term_key(pred.left, names), _term_key(pred.right, names)))
        return f"{sides[0]}!={sides[1]}"
    if isinstance(pred, ComparisonPredicate):
        left, op, right = pred.left, pred.op, pred.right
        if op in (">", ">="):
            left, right = right, left
            op = "<" if op == ">" else "<="
        return f"{_term_key(left, names)}{op}{_term_key(right, names)}"
    # GenericPredicate (or any unknown subclass): two distinct callables
    # cannot be compared structurally — refuse to canonicalize.
    return None


def canonical_query_key(query: ConjunctiveQuery) -> str | None:
    """A string key identifying the query up to variable renaming.

    Returns ``None`` when the query cannot be safely canonicalized (it
    carries a generic predicate); callers should then skip shape caches.

    Examples
    --------
    >>> from repro.query.parser import parse_query
    >>> a = canonical_query_key(parse_query("R(x, y), S(y, z)"))
    >>> b = canonical_query_key(parse_query("R(a, b), S(b, c)"))
    >>> a == b
    True
    >>> a == canonical_query_key(parse_query("R(x, y), S(x, z)"))
    False
    """
    names = canonical_variable_order(query)
    atom_keys = [
        f"{atom.relation}({','.join(_term_key(t, names) for t in atom.terms)})"
        for atom in query.atoms
    ]
    pred_keys: list[str] = []
    for pred in query.predicates:
        key = _predicate_key(pred, names)
        if key is None:
            return None
        pred_keys.append(key)
    # Predicate order is irrelevant (conjunction), output order is irrelevant
    # (projection is onto a set of variables) — sort both.
    pred_keys.sort()
    if query.is_full:
        proj = "*"
    else:
        proj = ",".join(sorted(names[v] for v in query.output_variables))
    return f"{';'.join(atom_keys)}|{';'.join(pred_keys)}|{proj}"
