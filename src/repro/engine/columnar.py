"""Vectorized columnar bucket elimination (the NumPy execution backend).

This module re-implements :func:`repro.engine.elimination.eliminate_group_counts`
on top of NumPy arrays instead of Python dictionaries.  Relations are read
through :meth:`repro.data.relation.Relation.to_columns` (one array per
attribute), intermediate results are :class:`ArrayFactor` objects — count
annotations over value columns — and the three primitive operations of bucket
elimination are all vectorized:

* **hash join** — join keys are *factorized* into dense ``int64`` codes
  (:class:`ColumnCodes`), both sides' code spaces are merged over their
  distinct values, and rows are matched with ``np.argsort``/``np.searchsorted``
  and expanded with ``np.repeat`` (a sort-merge join over the factorized
  codes);
* **group-by aggregation** (summing variables out, and the boundary
  multiplicity profiles of residual sensitivity) — group keys are packed from
  the per-column codes and counts are accumulated with ``np.add.at``;
* **predicate filtering** — inequality and comparison predicates become
  boolean column masks; generic predicates fall back to a row loop so that
  exactness is preserved;
* **heavy-bucket aggregation** — two-factor buckets whose shared variables
  are all being summed out and whose join size exceeds
  :data:`repro.engine.elimination.MATMUL_THRESHOLD` take a sparse matrix
  product (the joined rows are never materialised), with the same
  predicate-dropping semantics as the dict engine's fast path.

Factorization is the single hottest primitive, so it is **cached and
propagated** instead of recomputed:

* base-relation columns are factorized once per ``(relation, column)`` and
  memoized on the :class:`~repro.data.relation.Relation` itself (invalidated
  on mutation, released when the serving-layer registry bumps a database
  version) — every residual subset, query and service request against the
  same instance reuses the codes;
* every :class:`ArrayFactor` carries its per-column :class:`ColumnCodes`
  through joins, filters and projections (indexing codes is O(rows); the
  ``np.unique`` it replaces is O(rows log rows)), so intermediate results
  never re-factorize a column they inherited.

:func:`factorization_cache_stats` exposes process-wide hit/miss counters,
and :func:`factorization_counter_scope` opens a *context-local* view whose
delta is immune to concurrent unrelated work — the profile evaluator
(:mod:`repro.engine.profile`) computes its per-profile counters through a
scope, so two serving-layer services in one process never cross-contaminate
each other's ``/stats`` and ``/metrics``.

The algorithm — elimination order, bucket grouping, the points where
predicates become applicable and the dropped-predicate bookkeeping — is
shared with the dict-based engine (see
:func:`repro.engine.elimination.greedy_elimination_order`), so both backends
return *identical* :class:`~repro.engine.elimination.EliminationResult`
values: same counts, same ``dropped_predicates``, same exactness flags.  The
cross-backend equivalence tests rely on this.

Counts are ``int64``; workloads whose intermediate multiplicities exceed
``2**63`` would need the dict engine's arbitrary-precision integers.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine import elimination as _elimination
from repro.engine.elimination import (
    EliminationResult,
    greedy_elimination_order,
    order_factors_for_join,
)
from repro.exceptions import EvaluationError
from repro.query.atoms import Constant, Variable
from repro.query.cq import ConjunctiveQuery
from repro.query.predicates import (
    ComparisonPredicate,
    InequalityPredicate,
    Predicate,
)

__all__ = [
    "ArrayFactor",
    "ColumnCodes",
    "adopt_factorization_scope",
    "current_factorization_scope",
    "eliminate_group_counts_columnar",
    "factorization_cache_stats",
    "factorization_counter_scope",
    "merge_factorization_delta",
    "reset_factorization_cache_stats",
    "use_kernels",
]

#: Re-factorize packed row codes once their key space exceeds this bound,
#: keeping every subsequent ``codes * cardinality + codes`` combination safely
#: inside ``int64``.
_RENORMALIZE_CARDINALITY = 2**31


# --------------------------------------------------------------------- #
# Compiled kernel hooks
# --------------------------------------------------------------------- #
#: The context-locally active :class:`repro.engine.kernels.CompiledKernels`
#: (``None``: the pure-NumPy paths run).  The ``"compiled"`` backend installs
#: an instance around each elimination via :func:`use_kernels`; the hook
#: points below consult it and fall back whenever a kernel declines (e.g.
#: non-``int64`` dtypes), so results are identical either way.
_ACTIVE_KERNELS: "contextvars.ContextVar" = contextvars.ContextVar(
    "repro_active_kernels", default=None
)


@contextlib.contextmanager
def use_kernels(kernels):
    """Run the enclosed columnar evaluation with compiled kernel hooks.

    Context-local (safe under the serving layer's thread pools): only the
    enclosed computation sees ``kernels``; concurrent evaluations on other
    threads keep the pure-NumPy paths.
    """
    token = _ACTIVE_KERNELS.set(kernels)
    try:
        yield kernels
    finally:
        _ACTIVE_KERNELS.reset(token)


# --------------------------------------------------------------------- #
# Key factorization
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ColumnCodes:
    """The dense factorization of one value column.

    ``codes`` assigns every row an ``int64`` code in ``range(cardinality)``;
    ``values`` lists the distinct values (``values[codes]`` reconstructs the
    column).  ``sorted_values`` records whether ``values`` is a sorted
    non-object array (the ``np.unique`` fast path) — two sorted code spaces
    can be merged with vectorized ``searchsorted`` arithmetic, everything
    else goes through Python-dict interning (which also unifies
    numerically-equal values of different types, exactly like Python's own
    hashing).

    Codes survive row selection and fancy indexing unchanged (``values`` may
    then over-approximate the values actually present, which is harmless:
    codes are only ever compared for equality), so factors propagate their
    factorizations through joins and filters instead of recomputing them.
    """

    codes: np.ndarray
    values: np.ndarray
    sorted_values: bool

    @property
    def cardinality(self) -> int:
        """Number of distinct values in the code space."""
        return int(len(self.values))

    def take(self, selector: np.ndarray) -> "ColumnCodes":
        """The factorization of the rows chosen by a mask / index array."""
        return ColumnCodes(self.codes[selector], self.values, self.sorted_values)


def _factorize_column(col: np.ndarray) -> ColumnCodes:
    """Factorize one column: ``np.unique`` for plain dtypes, dict interning
    for object columns (hashable but not necessarily mutually orderable)."""
    if col.dtype != object:
        kernels = _ACTIVE_KERNELS.get()
        if kernels is not None:
            result = kernels.factorize(col)
            if result is not None:
                codes, values = result
                return ColumnCodes(codes, values, True)
        uniq, inverse = np.unique(col, return_inverse=True)
        return ColumnCodes(inverse.astype(np.int64, copy=False), uniq, True)
    table: dict = {}
    out = np.empty(len(col), dtype=np.int64)
    for i, value in enumerate(col.tolist()):
        out[i] = table.setdefault(value, len(table))
    values = np.empty(len(table), dtype=object)
    values[:] = list(table)
    return ColumnCodes(out, values, False)


class _FactorizationCounters:
    """Thread-safe hit/miss counters of the base-column factorization cache.

    One process-wide instance (:data:`_FACTORIZATION_COUNTERS`) accumulates
    the global totals; additional *scoped* instances are installed
    context-locally (:func:`factorization_counter_scope`) so one
    computation's delta can be read without racing unrelated work — two
    :class:`~repro.service.service.PrivateQueryService` instances evaluating
    profiles concurrently in one process each see only their own events.
    Scopes nest: a ``parent`` chain lets an outer scope keep counting while
    an inner one is active.
    """

    def __init__(self, parent: "_FactorizationCounters | None" = None) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.parent = parent

    def _record_one(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def add_delta(self, hits: int, misses: int) -> None:
        """Fold a batch of events counted elsewhere into this counter."""
        with self._lock:
            self.hits += hits
            self.misses += misses

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses}

    def reset(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0


_FACTORIZATION_COUNTERS = _FactorizationCounters()

#: The innermost context-local counter scope (``None``: only globals count).
_FACTORIZATION_SCOPE: "contextvars.ContextVar[_FactorizationCounters | None]" = (
    contextvars.ContextVar("repro_factorization_scope", default=None)
)


def _record_factorization(hit: bool) -> None:
    """Record one cache event on the global counters and every active scope."""
    _FACTORIZATION_COUNTERS._record_one(hit)
    scope = _FACTORIZATION_SCOPE.get()
    while scope is not None:
        scope._record_one(hit)
        scope = scope.parent


def merge_factorization_delta(hits: int, misses: int) -> None:
    """Fold a ``{"hits", "misses"}`` delta counted in another process into
    the global counters and every active scope.

    This is the process-pool analogue of :func:`_record_factorization`:
    workers count their cache events in a worker-local scope, ship the
    snapshot home, and the parent merges it here so
    :func:`factorization_cache_stats` and any open
    :func:`factorization_counter_scope` stay consistent across
    serial/thread/process evaluation modes.
    """
    if not hits and not misses:
        return
    _FACTORIZATION_COUNTERS.add_delta(hits, misses)
    scope = _FACTORIZATION_SCOPE.get()
    while scope is not None:
        scope.add_delta(hits, misses)
        scope = scope.parent


def factorization_cache_stats() -> dict[str, int]:
    """Cumulative process-wide ``{"hits", "misses"}`` of the per-(relation,
    column) cache (the cache itself lives on each
    :class:`~repro.data.relation.Relation`).

    These totals are shared by everything in the process; callers that need
    the delta of *one* computation must not diff before/after snapshots
    (concurrent work pollutes the difference) — open a
    :func:`factorization_counter_scope` instead, as
    :func:`repro.engine.profile.evaluate_profile` does.
    """
    return _FACTORIZATION_COUNTERS.snapshot()


def reset_factorization_cache_stats() -> None:
    """Zero the process-wide counters (tests/benchmarks; scopes are unaffected)."""
    _FACTORIZATION_COUNTERS.reset()


@contextlib.contextmanager
def factorization_counter_scope() -> "Iterator[_FactorizationCounters]":
    """A context-local counter seeing only this context's cache events.

    Nested scopes stack (both count); the global totals always count.  The
    yielded object stays readable after the ``with`` block — its snapshot is
    the computation's exact delta.  Worker threads spawned inside the scope
    start with an empty context; re-establish the scope there with
    :func:`adopt_factorization_scope`.
    """
    scope = _FactorizationCounters(parent=_FACTORIZATION_SCOPE.get())
    token = _FACTORIZATION_SCOPE.set(scope)
    try:
        yield scope
    finally:
        _FACTORIZATION_SCOPE.reset(token)


@contextlib.contextmanager
def adopt_factorization_scope(scope: "_FactorizationCounters | None"):
    """Re-establish ``scope`` (captured in another thread) in this context.

    ``adopt_factorization_scope(None)`` is a no-op context, so callers can
    pass through whatever they captured.  The counters are thread-safe, so
    any number of workers may adopt one scope concurrently.
    """
    if scope is None:
        yield None
        return
    token = _FACTORIZATION_SCOPE.set(scope)
    try:
        yield scope
    finally:
        _FACTORIZATION_SCOPE.reset(token)


def current_factorization_scope() -> "_FactorizationCounters | None":
    """The innermost active scope (capture before fanning out to a pool)."""
    return _FACTORIZATION_SCOPE.get()


def _relation_factorization(relation: Relation, position: int) -> ColumnCodes:
    """The cached factorization of a base-relation column (compute on miss)."""
    cached = relation.cached_factorization(position)
    if isinstance(cached, ColumnCodes):
        _record_factorization(True)
        return cached
    factorized = _factorize_column(relation.to_columns()[position])
    relation.store_factorization(position, factorized)
    _record_factorization(False)
    return factorized


# --------------------------------------------------------------------- #
# Factors
# --------------------------------------------------------------------- #
@dataclass
class ArrayFactor:
    """A count-annotated factor stored columnar.

    ``columns`` holds one value array per entry of ``variables`` (aligned,
    equal length); ``counts`` is the per-row multiplicity.  Value arrays are
    either ``int64`` (fast path) or ``object`` (arbitrary hashable values).
    ``codes`` optionally carries the :class:`ColumnCodes` factorization of
    each column (``None`` entries are factorized lazily and memoized).
    A factor over zero variables is a scalar: ``columns`` is empty and
    ``counts`` has exactly one entry (or zero entries for the empty result).
    """

    variables: tuple[Variable, ...]
    columns: tuple[np.ndarray, ...]
    counts: np.ndarray
    codes: list[ColumnCodes | None] | None = field(default=None)

    def __len__(self) -> int:
        return int(self.counts.shape[0])

    def column(self, var: Variable) -> np.ndarray:
        """The value column of ``var`` (raises ``ValueError`` if absent)."""
        return self.columns[self.variables.index(var)]

    def _code_slots(self) -> list[ColumnCodes | None]:
        if self.codes is None:
            self.codes = [None] * len(self.columns)
        return self.codes

    def code_of(self, var: Variable) -> ColumnCodes:
        """The (lazily computed, memoized) factorization of ``var``'s column."""
        slots = self._code_slots()
        index = self.variables.index(var)
        if slots[index] is None:
            slots[index] = _factorize_column(self.columns[index])
        return slots[index]

    def take(self, selector: np.ndarray) -> "ArrayFactor":
        """A new factor keeping the rows chosen by a boolean mask / index array."""
        codes = None
        if self.codes is not None:
            codes = [cc.take(selector) if cc is not None else None for cc in self.codes]
        return ArrayFactor(
            self.variables,
            tuple(col[selector] for col in self.columns),
            self.counts[selector],
            codes,
        )


def _renormalize(codes: np.ndarray) -> tuple[np.ndarray, int]:
    kernels = _ACTIVE_KERNELS.get()
    if kernels is not None:
        return kernels.renormalize(codes)
    uniq, inverse = np.unique(codes, return_inverse=True)
    return inverse.astype(np.int64, copy=False), max(int(len(uniq)), 1)


def _factor_row_codes(factor: ArrayFactor, variables: Sequence[Variable]) -> np.ndarray:
    """``int64`` codes identifying the distinct rows of ``variables`` in ``factor``.

    Zero variables means every row is the same (all-zero codes).  Multi-column
    keys are packed positionally (``codes * cardinality + codes``) from the
    per-column factorizations and re-factorized whenever the packed key space
    approaches the ``int64`` range.
    """
    if not variables:
        return np.zeros(len(factor), dtype=np.int64)
    codes: np.ndarray | None = None
    cardinality = 1
    for var in variables:
        cc = factor.code_of(var)
        distinct = max(cc.cardinality, 1)
        if codes is None:
            codes, cardinality = cc.codes, distinct
        else:
            codes = codes * np.int64(distinct) + cc.codes
            cardinality *= distinct
        if cardinality > _RENORMALIZE_CARDINALITY:
            codes, cardinality = _renormalize(codes)
    return codes


def _merge_column_codes(
    left: ColumnCodes, right: ColumnCodes
) -> tuple[np.ndarray, np.ndarray, int]:
    """Re-encode two factorizations of one variable into a joint code space.

    Only the *distinct values* of each side are compared (O(distinct) work
    instead of the O(rows) column concatenation the codes replace); the row
    codes are then translated with one vectorized ``take`` per side.
    """
    if left.sorted_values and right.sorted_values:
        combined = np.concatenate([left.values, right.values])
        joint, inverse = np.unique(combined, return_inverse=True)
        left_map = inverse[: len(left.values)].astype(np.int64, copy=False)
        right_map = inverse[len(left.values) :].astype(np.int64, copy=False)
        cardinality = int(len(joint))
    else:
        table: dict = {}
        left_map = np.fromiter(
            (table.setdefault(v, len(table)) for v in left.values.tolist()),
            dtype=np.int64,
            count=len(left.values),
        )
        right_map = np.fromiter(
            (table.setdefault(v, len(table)) for v in right.values.tolist()),
            dtype=np.int64,
            count=len(right.values),
        )
        cardinality = len(table)
    left_codes = left_map[left.codes] if len(left.values) else left.codes
    right_codes = right_map[right.codes] if len(right.values) else right.codes
    return left_codes, right_codes, cardinality


def _factor_join_codes(
    left: ArrayFactor, right: ArrayFactor, shared: Sequence[Variable]
) -> tuple[np.ndarray, np.ndarray]:
    """Row codes for the shared key columns, consistent across both join sides."""
    nl, nr = len(left), len(right)
    lcodes: np.ndarray | None = None
    rcodes: np.ndarray | None = None
    cardinality = 1
    for var in shared:
        lcol, rcol, distinct = _merge_column_codes(left.code_of(var), right.code_of(var))
        distinct = max(distinct, 1)
        if lcodes is None or rcodes is None:
            lcodes, rcodes, cardinality = lcol, rcol, distinct
        else:
            lcodes = lcodes * np.int64(distinct) + lcol
            rcodes = rcodes * np.int64(distinct) + rcol
            cardinality *= distinct
        if cardinality > _RENORMALIZE_CARDINALITY:
            combined, cardinality = _renormalize(np.concatenate([lcodes, rcodes]))
            lcodes, rcodes = combined[:nl], combined[nl:]
    if lcodes is None or rcodes is None:
        return np.zeros(nl, dtype=np.int64), np.zeros(nr, dtype=np.int64)
    return lcodes, rcodes


# --------------------------------------------------------------------- #
# Relational primitives
# --------------------------------------------------------------------- #
def _expand_matches(lkey: np.ndarray, rkey: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Matching ``(left_idx, right_idx)`` row pairs of a factorized join.

    The right codes are stable-sorted; every left row is expanded to its
    matching right rows.  With an active kernel hook the ``searchsorted``
    probe and the match materialization are fused into one pass; the NumPy
    path builds the same pairs (identical order) through ``searchsorted``
    ranges, ``repeat`` and ``cumsum`` offsets.
    """
    order = np.argsort(rkey, kind="stable")
    rsorted = rkey[order]
    kernels = _ACTIVE_KERNELS.get()
    if kernels is not None:
        return kernels.expand_matches(lkey, rsorted, order)
    lo = np.searchsorted(rsorted, lkey, side="left")
    hi = np.searchsorted(rsorted, lkey, side="right")
    matches = hi - lo
    hit = matches > 0
    per_left = matches[hit]
    total = int(per_left.sum())
    left_idx = np.repeat(np.nonzero(hit)[0], per_left)
    starts = np.repeat(lo[hit], per_left)
    offsets = np.repeat(np.cumsum(per_left) - per_left, per_left)
    right_idx = order[starts + (np.arange(total, dtype=np.int64) - offsets)]
    return left_idx, right_idx


def _join(left: ArrayFactor, right: ArrayFactor) -> ArrayFactor:
    """Natural join of two factors, multiplying counts (vectorized).

    With shared variables this is a factorized sort-merge join: both sides'
    key columns are encoded into one code space, the right side is sorted by
    code, and every left row is expanded to its matching right rows through
    ``searchsorted`` ranges.  Without shared variables it degenerates to a
    cross product.
    """
    shared = tuple(v for v in left.variables if v in right.variables)
    nl, nr = len(left), len(right)
    if shared:
        lkey, rkey = _factor_join_codes(left, right, shared)
        left_idx, right_idx = _expand_matches(lkey, rkey)
    else:
        left_idx = np.repeat(np.arange(nl, dtype=np.int64), nr)
        right_idx = np.tile(np.arange(nr, dtype=np.int64), nl)

    extra = tuple(v for v in right.variables if v not in shared)
    out_vars = left.variables + extra
    out_cols = tuple(col[left_idx] for col in left.columns) + tuple(
        right.column(v)[right_idx] for v in extra
    )
    left_codes = left.codes or [None] * len(left.columns)
    right_slots = right.codes or [None] * len(right.columns)
    out_codes: list[ColumnCodes | None] = [
        cc.take(left_idx) if cc is not None else None for cc in left_codes
    ]
    for v in extra:
        cc = right_slots[right.variables.index(v)]
        out_codes.append(cc.take(right_idx) if cc is not None else None)
    return ArrayFactor(
        out_vars, out_cols, left.counts[left_idx] * right.counts[right_idx], out_codes
    )


def _group_reduce(codes: np.ndarray, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-group first-occurrence indices and count sums, groups in
    ascending code order.  The kernel hook fuses the ``np.unique`` +
    ``np.add.at`` pair into one pass over a stable sort order; both paths
    return identical arrays."""
    kernels = _ACTIVE_KERNELS.get()
    if kernels is not None:
        return kernels.group_reduce(codes, counts)
    uniq, first_idx, inverse = np.unique(codes, return_index=True, return_inverse=True)
    sums = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(sums, inverse, counts)
    return first_idx, sums


def _project_sum(factor: ArrayFactor, keep: Sequence[Variable]) -> ArrayFactor:
    """Sum out every variable not in ``keep`` (vectorized group-by)."""
    keep_set = set(keep)
    keep_vars = tuple(v for v in factor.variables if v in keep_set)
    codes = _factor_row_codes(factor, keep_vars)
    first_idx, sums = _group_reduce(codes, factor.counts)
    slots = factor.codes or [None] * len(factor.columns)
    out_codes = []
    out_cols = []
    for v in keep_vars:
        index = factor.variables.index(v)
        out_cols.append(factor.columns[index][first_idx])
        cc = slots[index]
        out_codes.append(cc.take(first_idx) if cc is not None else None)
    return ArrayFactor(keep_vars, tuple(out_cols), sums, out_codes)


# --------------------------------------------------------------------- #
# Predicates
# --------------------------------------------------------------------- #
def _as_bool_mask(result: object, length: int) -> np.ndarray:
    """Normalise a comparison result to a boolean array of the right length.

    NumPy collapses comparisons between incompatible operands (e.g. an int64
    column against a string constant) to a scalar; broadcast that back out.
    """
    if isinstance(result, np.ndarray) and result.shape == (length,):
        return result.astype(bool, copy=False)
    return np.full(length, bool(result))


def _predicate_mask(pred: Predicate, factor: ArrayFactor) -> np.ndarray:
    """A boolean keep-mask for ``pred`` over the rows of ``factor``."""
    length = len(factor)

    def operand(term):
        if isinstance(term, Variable):
            return factor.column(term)
        return term.value

    if isinstance(pred, InequalityPredicate):
        return _as_bool_mask(operand(pred.left) != operand(pred.right), length)
    if isinstance(pred, ComparisonPredicate):
        left, right = operand(pred.left), operand(pred.right)
        if pred.op == "<":
            result = left < right
        elif pred.op == "<=":
            result = left <= right
        elif pred.op == ">":
            result = left > right
        else:
            result = left >= right
        return _as_bool_mask(result, length)

    # Generic predicates: exact row-by-row evaluation (same as the dict engine).
    variables = factor.variables
    if factor.columns:
        rows = zip(*(col.tolist() for col in factor.columns))
    else:
        rows = iter([()] * length)
    return np.fromiter(
        (pred.evaluate(dict(zip(variables, row))) for row in rows),
        dtype=bool,
        count=length,
    )


def _apply_ready_predicates(
    factor: ArrayFactor, pending: list[Predicate]
) -> tuple[ArrayFactor, list[Predicate]]:
    """Apply (and consume) every pending predicate contained in ``factor``."""
    var_set = frozenset(factor.variables)
    ready = [p for p in pending if p.variables <= var_set]
    if not ready:
        return factor, pending
    remaining = [p for p in pending if p not in ready]
    mask = np.ones(len(factor), dtype=bool)
    for pred in ready:
        mask &= _predicate_mask(pred, factor)
    return factor.take(mask), remaining


# --------------------------------------------------------------------- #
# Atom factors
# --------------------------------------------------------------------- #
def _atom_factor(query: ConjunctiveQuery, database: Database, atom_index: int) -> ArrayFactor:
    """The initial factor of one atom: distinct variable bindings with count 1.

    Columns (and their factorizations) come straight from the relation's
    cached columnar snapshot, so repeated eliminations over the same
    instance — every subset of a sensitivity profile, every query of a
    serving session — skip the ``np.unique`` factorization entirely.
    """
    atom = query.atoms[atom_index]
    relation = database.relation(atom.relation)
    raw = relation.to_columns()
    length = len(relation)

    mask: np.ndarray | None = None

    def conjoin(condition: np.ndarray) -> None:
        nonlocal mask
        mask = condition if mask is None else (mask & condition)

    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            conjoin(_as_bool_mask(raw[position] == term.value, length))
    variables = atom.variables
    var_positions = {v: atom.positions_of(v) for v in variables}
    for positions in var_positions.values():
        for position in positions[1:]:
            conjoin(_as_bool_mask(raw[positions[0]] == raw[position], length))

    codes: list[ColumnCodes | None] = [
        _relation_factorization(relation, var_positions[v][0]) for v in variables
    ]
    if mask is not None:
        keep = np.nonzero(mask)[0]
        columns = tuple(raw[var_positions[v][0]][keep] for v in variables)
        codes = [cc.take(keep) if cc is not None else None for cc in codes]
        rows = int(len(keep))
    else:
        columns = tuple(raw[var_positions[v][0]] for v in variables)
        rows = length
    # Distinct relation rows always induce distinct bindings (constants and
    # repeated variables are filtered above), so every count is 1.
    return ArrayFactor(tuple(variables), columns, np.ones(rows, dtype=np.int64), codes)


# --------------------------------------------------------------------- #
# Heavy-bucket sparse-matmul fast path (mirrors the dict engine exactly)
# --------------------------------------------------------------------- #
def _estimated_join_rows(
    left: ArrayFactor, right: ArrayFactor, shared: tuple[Variable, ...]
) -> int:
    """Number of rows the join of two factors would produce (exact, cheap)."""
    lkey, rkey = _factor_join_codes(left, right, shared)
    rsorted = np.sort(rkey, kind="stable")
    kernels = _ACTIVE_KERNELS.get()
    if kernels is not None:
        return kernels.match_total(lkey, rsorted)
    lo = np.searchsorted(rsorted, lkey, side="left")
    hi = np.searchsorted(rsorted, lkey, side="right")
    return int((hi - lo).sum())


def _matmul_aggregate(
    left: ArrayFactor,
    right: ArrayFactor,
    shared: tuple[Variable, ...],
    pending: list[Predicate],
) -> tuple[ArrayFactor, list[Predicate]]:
    """Sum out ``shared`` from ``left ⋈ right`` via a sparse matrix product.

    The columnar twin of
    :func:`repro.engine.elimination._matmul_aggregate`, with identical
    semantics: the joined rows are never materialised, and pending
    predicates involving the summed-out variables cannot be honoured on
    this path — they are left pending, so both backends report the same
    dropped predicates (and the same upper-bound counts) on heavy buckets.
    """
    from scipy import sparse

    nl, nr = len(left), len(right)
    left_keep = tuple(v for v in left.variables if v not in shared)
    right_keep = tuple(v for v in right.variables if v not in shared)
    out_vars = left_keep + right_keep

    def empty_result() -> ArrayFactor:
        columns = tuple(left.column(v)[:0] for v in left_keep) + tuple(
            right.column(v)[:0] for v in right_keep
        )
        return ArrayFactor(out_vars, columns, np.zeros(0, dtype=np.int64))

    # Same early exits as the dict engine: an empty side, or no right row
    # matching any left mid, returns the empty factor with ``pending``
    # untouched (the predicates stay pending for later factors).
    if not nl or not nr:
        return empty_result(), pending

    lmid, rmid = _factor_join_codes(left, right, shared)
    if not np.isin(rmid, lmid).any():
        return empty_result(), pending
    mid_uniq, mid_inverse = np.unique(np.concatenate([lmid, rmid]), return_inverse=True)
    lmid_dense, rmid_dense = mid_inverse[:nl], mid_inverse[nl:]

    lrow = _factor_row_codes(left, left_keep)
    rcol = _factor_row_codes(right, right_keep)
    lrow_uniq, lrow_first, lrow_dense = np.unique(
        lrow, return_index=True, return_inverse=True
    )
    rcol_uniq, rcol_first, rcol_dense = np.unique(
        rcol, return_index=True, return_inverse=True
    )

    left_matrix = sparse.coo_matrix(
        (left.counts, (lrow_dense, lmid_dense)),
        shape=(max(1, len(lrow_uniq)), max(1, len(mid_uniq))),
    ).tocsr()
    right_matrix = sparse.coo_matrix(
        (right.counts, (rmid_dense, rcol_dense)),
        shape=(max(1, len(mid_uniq)), max(1, len(rcol_uniq))),
    ).tocsr()
    product = (left_matrix @ right_matrix).tocoo()

    nonzero = product.data != 0
    rows = product.row[nonzero]
    cols = product.col[nonzero]
    counts = product.data[nonzero].astype(np.int64, copy=False)

    left_idx = lrow_first[rows]
    right_idx = rcol_first[cols]
    out_cols = tuple(left.column(v)[left_idx] for v in left_keep) + tuple(
        right.column(v)[right_idx] for v in right_keep
    )
    left_slots = left.codes or [None] * len(left.columns)
    right_slots = right.codes or [None] * len(right.columns)
    out_codes: list[ColumnCodes | None] = []
    for v in left_keep:
        cc = left_slots[left.variables.index(v)]
        out_codes.append(cc.take(left_idx) if cc is not None else None)
    for v in right_keep:
        cc = right_slots[right.variables.index(v)]
        out_codes.append(cc.take(right_idx) if cc is not None else None)
    factor = ArrayFactor(out_vars, out_cols, counts, out_codes)

    # Apply the pending predicates that survived the projection.
    return _apply_ready_predicates(factor, pending)


# --------------------------------------------------------------------- #
# Bucket joins and the driver
# --------------------------------------------------------------------- #
def _join_and_aggregate(
    bucket: Sequence[ArrayFactor],
    keep: Sequence[Variable],
    pending: list[Predicate],
) -> tuple[ArrayFactor, list[Predicate]]:
    """Join ``bucket``, filter, and sum onto ``keep`` (vectorized).

    Factors are ordered by the shared connectivity heuristic
    (:func:`repro.engine.elimination.order_factors_for_join`), and
    predicates are applied as soon as some intermediate factor covers their
    variables.  Two-factor buckets whose shared variables are all being
    summed out and whose join size exceeds
    :data:`repro.engine.elimination.MATMUL_THRESHOLD` take the sparse-matmul
    path — the same gate, with the same predicate-dropping semantics, as the
    dict engine.
    """
    # Sparse-matrix fast path for heavy two-factor buckets.  The threshold
    # is read from the dict engine at call time so both backends always gate
    # on the same value (including under test monkeypatching).
    if len(bucket) == 2:
        keep_set = set(keep)
        shared = tuple(v for v in bucket[0].variables if v in bucket[1].variables)
        if shared and all(v not in keep_set for v in shared):
            estimated = _estimated_join_rows(bucket[0], bucket[1], shared)
            if estimated > _elimination.MATMUL_THRESHOLD:
                factor, pending = _matmul_aggregate(
                    bucket[0], bucket[1], shared, pending
                )
                return _project_sum(factor, keep), pending

    ordered = order_factors_for_join(bucket)
    current, pending = _apply_ready_predicates(ordered[0], pending)
    for factor in ordered[1:]:
        current = _join(current, factor)
        current, pending = _apply_ready_predicates(current, pending)
    return _project_sum(current, keep), pending


def eliminate_group_counts_columnar(
    query: ConjunctiveQuery,
    database: Database,
    group_variables: Sequence[Variable],
    *,
    atom_indices: Sequence[int] | None = None,
    predicates: Sequence[Predicate] | None = None,
) -> EliminationResult:
    """Group-by counts of a (residual) CQ via vectorized bucket elimination.

    The drop-in columnar equivalent of
    :func:`repro.engine.elimination.eliminate_group_counts`: same parameters,
    same :class:`EliminationResult` contract (identical counts, group-variable
    ordering, dropped predicates and elimination order).
    """
    indices = list(range(query.num_atoms)) if atom_indices is None else list(atom_indices)
    if not indices:
        return EliminationResult({(): 1}, tuple(group_variables), (), ())

    covered_vars = query.variables_of(indices)
    group_vars = tuple(group_variables)
    unknown = [v for v in group_vars if v not in covered_vars]
    if unknown:
        raise EvaluationError(
            f"group variables {sorted(v.name for v in unknown)} do not occur in the "
            "selected atoms"
        )

    pending = [
        p
        for p in (query.predicates if predicates is None else predicates)
        if p.variables <= covered_vars
    ]

    factors: list[ArrayFactor] = []
    for idx in indices:
        factor = _atom_factor(query, database, idx)
        factor, pending = _apply_ready_predicates(factor, pending)
        factors.append(factor)

    internal = [v for v in covered_vars if v not in group_vars]
    order = greedy_elimination_order([set(f.variables) for f in factors], internal)

    for var in order:
        bucket = [f for f in factors if var in f.variables]
        others = [f for f in factors if var not in f.variables]
        if not bucket:
            continue
        keep = [v for factor in bucket for v in factor.variables if v != var]
        summed, pending = _join_and_aggregate(bucket, keep, pending)
        factors = others + [summed]

    final, pending = _join_and_aggregate(factors, list(group_vars), pending)

    # Re-order key columns to match the requested group-variable order (the
    # final factor's variables are a permutation of ``group_vars``).
    if final.variables != group_vars:
        columns = tuple(final.column(v) for v in group_vars)
        final = ArrayFactor(group_vars, columns, final.counts)

    value_columns = [col.tolist() for col in final.columns]
    count_list = final.counts.tolist()
    counts = {
        tuple(col[i] for col in value_columns): count_list[i]
        for i in range(len(count_list))
    }

    return EliminationResult(
        counts=counts,
        group_variables=group_vars,
        dropped_predicates=tuple(pending),
        elimination_order=tuple(order),
    )
