"""Query evaluation engine.

This subpackage evaluates conjunctive queries over the relational substrate.
It provides two complementary strategies:

* :mod:`repro.engine.join` — exact backtracking enumeration that applies
  every predicate (used by tests, small instances, and anywhere exactness
  with arbitrary predicates is required), and
* :mod:`repro.engine.elimination` — bucket (variable) elimination over count
  annotations, which evaluates the aggregate queries behind ``T_E(I)`` in
  polynomial time for bounded-width residuals, applying each predicate in
  the first joined factor that contains all of its variables.

Both are wrapped by the pluggable execution backends of
:mod:`repro.engine.backend`: the dict-based ``"python"`` backend, the
vectorized columnar ``"numpy"`` backend (:mod:`repro.engine.columnar`), and
the optional JIT-compiled ``"compiled"`` backend
(:mod:`repro.engine.kernels`, requires numba), all of which produce
identical results and differ only in speed.  See ``docs/backends.md``.

On top of these, :mod:`repro.engine.aggregates` computes the boundary
multiplicities ``T_E(I)`` of residual queries (the building block of residual
sensitivity), :mod:`repro.engine.profile` evaluates whole residual-sensitivity
profiles in one shared-lattice pass (component memoization, isomorphism
dedup, optional worker pool — see ``docs/performance.md``),
:mod:`repro.engine.agm` computes AGM bounds via the fractional
edge cover LP, and :mod:`repro.engine.domains` builds the augmented active
domain ``Z+(q, I)`` needed for comparison predicates (Section 5.2).
:mod:`repro.engine.canonical` canonicalizes query structure into cache keys
for the serving layer's plan and sensitivity caches.
"""

from repro.engine.aggregates import MultiplicityResult, boundary_multiplicity
from repro.engine.agm import AGMBound, fractional_edge_cover
from repro.engine.backend import (
    CompiledBackend,
    ExecutionBackend,
    NumpyBackend,
    PythonBackend,
    available_backends,
    backend_inventory,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_auto_backend,
)
from repro.engine.canonical import canonical_query_key
from repro.engine.evaluation import count_query, evaluate_query
from repro.engine.join import count_assignments, group_counts, iterate_assignments
from repro.engine.profile import LatticeProfile, ProfileStats, evaluate_profile

__all__ = [
    "AGMBound",
    "CompiledBackend",
    "ExecutionBackend",
    "LatticeProfile",
    "MultiplicityResult",
    "NumpyBackend",
    "ProfileStats",
    "PythonBackend",
    "available_backends",
    "backend_inventory",
    "boundary_multiplicity",
    "canonical_query_key",
    "count_assignments",
    "count_query",
    "default_backend_name",
    "evaluate_profile",
    "evaluate_query",
    "fractional_edge_cover",
    "get_backend",
    "group_counts",
    "iterate_assignments",
    "register_backend",
    "resolve_auto_backend",
]
