"""Query evaluation engine.

This subpackage evaluates conjunctive queries over the relational substrate.
It provides two complementary strategies:

* :mod:`repro.engine.join` — exact backtracking enumeration that applies
  every predicate (used by tests, small instances, and anywhere exactness
  with arbitrary predicates is required), and
* :mod:`repro.engine.elimination` — bucket (variable) elimination over count
  annotations, which evaluates the aggregate queries behind ``T_E(I)`` in
  polynomial time for bounded-width residuals, applying each predicate in
  the first joined factor that contains all of its variables.

On top of these, :mod:`repro.engine.aggregates` computes the boundary
multiplicities ``T_E(I)`` of residual queries (the building block of residual
sensitivity), :mod:`repro.engine.agm` computes AGM bounds via the fractional
edge cover LP, and :mod:`repro.engine.domains` builds the augmented active
domain ``Z+(q, I)`` needed for comparison predicates (Section 5.2).
:mod:`repro.engine.canonical` canonicalizes query structure into cache keys
for the serving layer's plan and sensitivity caches.
"""

from repro.engine.aggregates import MultiplicityResult, boundary_multiplicity
from repro.engine.agm import AGMBound, fractional_edge_cover
from repro.engine.canonical import canonical_query_key
from repro.engine.evaluation import count_query, evaluate_query
from repro.engine.join import count_assignments, group_counts, iterate_assignments

__all__ = [
    "AGMBound",
    "MultiplicityResult",
    "boundary_multiplicity",
    "canonical_query_key",
    "count_assignments",
    "count_query",
    "evaluate_query",
    "fractional_edge_cover",
    "group_counts",
    "iterate_assignments",
]
