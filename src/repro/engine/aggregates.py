"""Boundary multiplicities ``T_E(I)`` of residual queries.

For a residual query ``q_E`` (the join of the atoms in ``E``) the *maximum
boundary multiplicity* is

    T_E(I) = max_{t ∈ dom(∂q_E)} | q_E(I) ⋉ t |                (full CQs)
    T_E(I) = max_{t ∈ dom(∂q_E)} | π_{o_E}( q_E(I) ⋉ t ) |      (non-full CQs)

with the conventions ``T_∅(I) = 1`` and, for non-full queries,
``T_E(I) = 1`` whenever ``o_E = ∅`` (Section 6).

This module computes ``T_E(I)`` with two interchangeable strategies:

* ``"enumerate"`` — the exact backtracking join of :mod:`repro.engine.join`,
  which applies *all* predicates (used on small inputs and in tests);
* ``"eliminate"`` — bucket elimination (:mod:`repro.engine.elimination`),
  polynomial for bounded-width residuals; predicates that cannot be applied
  exactly are dropped, making the result a certified upper bound.

The default ``"auto"`` strategy runs elimination first and falls back to
bounded enumeration only when elimination had to drop a predicate and the
instance is small enough for exact evaluation.

Predicate-only boundary variables (``∂q2``, Section 5) are handled as
follows: dropped predicates that are pure inequalities are ignored, which is
exact for large domains (Corollary 5.1); dropped comparison predicates are
resolved by ranging the ``∂q2`` variables over the augmented active domain
``Z+(q, I)`` (Section 5.2); dropped generic predicates are rejected with an
:class:`~repro.exceptions.EvaluationError` (the general Section 5.1
algorithm is exponential and out of scope for the evaluation engine).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.database import Database
from repro.engine import join as join_engine
from repro.engine.backend import ExecutionBackend, get_backend
from repro.engine.domains import augmented_active_domain
from repro.exceptions import EvaluationError
from repro.query.atoms import Variable
from repro.query.cq import ConjunctiveQuery
from repro.query.predicates import Predicate
from repro.query.residual import ResidualQuery, residual_query

__all__ = [
    "MultiplicityResult",
    "boundary_multiplicity",
    "combine_component_results",
]

#: Default cap on backtracking extension steps before giving up on the exact
#: enumeration fallback.
DEFAULT_MAX_ENUMERATION = 500_000


@dataclass(frozen=True)
class MultiplicityResult:
    """The outcome of a ``T_E(I)`` computation.

    Attributes
    ----------
    value:
        The maximum boundary multiplicity.
    witness:
        A boundary assignment attaining the maximum (aligned with
        ``boundary``), or ``None`` when the boundary is empty or the residual
        is empty.
    boundary:
        The relational boundary variables ``∂q1_E`` used for grouping.
    strategy:
        ``"convention"``, ``"enumerate"``, ``"eliminate"`` or
        ``"eliminate+domain"`` — how the value was obtained.
    exact:
        ``True`` if every predicate was honoured exactly; ``False`` if the
        value is an upper bound because predicates were dropped.
    dropped_predicates:
        The predicates that were not applied (empty when ``exact``).
    """

    value: int
    witness: tuple | None
    boundary: tuple[Variable, ...]
    strategy: str
    exact: bool
    dropped_predicates: tuple[Predicate, ...] = ()


def combine_component_results(
    residual: ResidualQuery,
    group_vars: tuple[Variable, ...],
    parts: Sequence[MultiplicityResult],
    component_vars: Sequence[frozenset[Variable]],
) -> MultiplicityResult:
    """Assemble ``T_E`` of a disconnected residual from its component results.

    The components' boundaries are disjoint, so the maximum joint
    multiplicity is the product of the per-component maxima.  Predicates
    inside the residual but spanning two components can never be applied by
    the per-component evaluation; they are reported as dropped and the value
    becomes an upper bound.  Shared by :func:`boundary_multiplicity` (which
    evaluates the components recursively) and the shared-lattice profile
    evaluator (:mod:`repro.engine.profile`, which memoizes them across
    subsets) so both produce identical results.
    """
    value = 1
    exact = True
    dropped: list[Predicate] = []
    for part in parts:
        value *= part.value
        exact = exact and part.exact
        dropped.extend(part.dropped_predicates)
    for pred in residual.predicates:
        if not any(pred.variables <= vars_ for vars_ in component_vars):
            dropped.append(pred)
            exact = False
    return MultiplicityResult(
        value=value,
        witness=None,
        boundary=group_vars,
        strategy="eliminate",
        exact=exact,
        dropped_predicates=tuple(dropped),
    )


def _max_entry(counts: dict[tuple, int]) -> tuple[int, tuple | None]:
    if not counts:
        return 0, None
    best_key = max(counts, key=lambda k: counts[k])
    return counts[best_key], best_key


def _distinct_per_group(
    counts: dict[tuple, int], group_arity: int
) -> dict[tuple, int]:
    """Collapse counts keyed by (boundary + output) to distinct-output counts per boundary."""
    distinct: dict[tuple, set[tuple]] = {}
    for key, count in counts.items():
        if count <= 0:
            continue
        boundary_key = key[:group_arity]
        output_key = key[group_arity:]
        distinct.setdefault(boundary_key, set()).add(output_key)
    return {key: len(values) for key, values in distinct.items()}


def _enumerate_counts(
    query: ConjunctiveQuery,
    database: Database,
    residual: ResidualQuery,
    group_vars: tuple[Variable, ...],
    distinct_on: tuple[Variable, ...] | None,
    predicates: Sequence[Predicate],
    max_intermediate: int | None,
) -> dict[tuple, int]:
    return join_engine.group_counts(
        query,
        database,
        group_vars,
        atom_indices=sorted(residual.atom_indices),
        predicates=predicates,
        distinct_on=distinct_on,
        max_intermediate=max_intermediate,
    )


def _eliminate_counts(
    query: ConjunctiveQuery,
    database: Database,
    residual: ResidualQuery,
    group_vars: tuple[Variable, ...],
    distinct_on: tuple[Variable, ...] | None,
    predicates: Sequence[Predicate],
    backend: ExecutionBackend,
) -> tuple[dict[tuple, int], tuple[Predicate, ...]]:
    if distinct_on is None:
        result = backend.eliminate_group_counts(
            query,
            database,
            group_vars,
            atom_indices=sorted(residual.atom_indices),
            predicates=predicates,
        )
        return result.counts, result.dropped_predicates
    extended_group = group_vars + tuple(v for v in distinct_on if v not in group_vars)
    result = backend.eliminate_group_counts(
        query,
        database,
        extended_group,
        atom_indices=sorted(residual.atom_indices),
        predicates=predicates,
    )
    collapsed = _distinct_per_group(result.counts, len(group_vars))
    return collapsed, result.dropped_predicates


def _comparison_boundary_value(
    query: ConjunctiveQuery,
    database: Database,
    residual: ResidualQuery,
    group_vars: tuple[Variable, ...],
    distinct_on: tuple[Variable, ...] | None,
    max_intermediate: int | None,
) -> MultiplicityResult:
    """Section 5.2: resolve comparison predicates crossing the boundary.

    The ``∂q2`` variables (realised only outside the residual but linked to
    it through comparison predicates) range over the augmented active domain
    ``Z+(q, I)``.  We enumerate the residual exactly, then for every
    boundary group and every assignment of the ``∂q2`` variables we count the
    residual tuples that satisfy the crossing predicates, and take the
    maximum.
    """
    crossing = [p for p in residual.dropped_predicates if not p.is_inequality]
    q2_vars = tuple(sorted(residual.boundary_predicate_only, key=lambda v: v.name))
    domain_values = augmented_active_domain(query, database)

    inside_preds = list(residual.predicates) + [
        p for p in residual.dropped_predicates if p.is_inequality and p.variables <= residual.variables
    ]

    assignments = list(
        join_engine.iterate_assignments(
            query,
            database,
            atom_indices=sorted(residual.atom_indices),
            predicates=inside_preds,
            max_intermediate=max_intermediate,
        )
    )

    best_value = 0
    best_witness: tuple | None = None
    groups: dict[tuple, list[dict]] = {}
    for assignment in assignments:
        key = tuple(assignment[v] for v in group_vars)
        groups.setdefault(key, []).append(assignment)

    for key, rows in groups.items():
        for combo in itertools.product(domain_values, repeat=len(q2_vars)):
            extension = dict(zip(q2_vars, combo))
            if distinct_on is None:
                count = 0
                for row in rows:
                    merged = {**row, **extension}
                    if all(p.evaluate(merged) for p in crossing if p.is_bound(merged)):
                        count += 1
            else:
                distinct: set[tuple] = set()
                for row in rows:
                    merged = {**row, **extension}
                    if all(p.evaluate(merged) for p in crossing if p.is_bound(merged)):
                        distinct.add(tuple(row[v] for v in distinct_on))
                count = len(distinct)
            if count > best_value:
                best_value = count
                best_witness = key
            if not q2_vars:
                break
    return MultiplicityResult(
        value=best_value,
        witness=best_witness,
        boundary=group_vars,
        strategy="eliminate+domain",
        exact=True,
        dropped_predicates=(),
    )


def boundary_multiplicity(
    query: ConjunctiveQuery,
    database: Database,
    kept_atoms: Iterable[int],
    *,
    strategy: str = "auto",
    max_enumeration: int | None = DEFAULT_MAX_ENUMERATION,
    backend: str | ExecutionBackend | None = None,
) -> MultiplicityResult:
    """Compute ``T_E(I)`` for the residual query on ``kept_atoms``.

    Parameters
    ----------
    query:
        The parent conjunctive query (full or non-full, with or without
        predicates and self-joins).
    database:
        The instance ``I``.
    kept_atoms:
        The subset ``E`` of atom indices forming the residual query.  The
        empty set returns the conventional value ``1``.
    strategy:
        ``"auto"`` (default), ``"enumerate"`` or ``"eliminate"``.
    max_enumeration:
        Step cap for the exact enumeration strategy / fallback; ``None``
        disables the cap.
    backend:
        Execution backend (name, instance or ``None`` for the process
        default) used for the elimination-based group counting.  The exact
        enumeration and Section 5.2 domain-ranging fallbacks always run on
        the Python engine; backends produce identical values either way.

    Returns
    -------
    MultiplicityResult
    """
    exec_backend = get_backend(backend)
    residual = residual_query(query, kept_atoms)
    if residual.is_empty:
        return MultiplicityResult(
            value=1, witness=None, boundary=(), strategy="convention", exact=True
        )

    group_vars = tuple(sorted(residual.boundary_relational, key=lambda v: v.name))

    # Residuals that fall apart into several connected components (atoms
    # sharing no variables) are evaluated per component and multiplied:
    # their boundaries are disjoint, so the maximum joint multiplicity is the
    # product of the per-component maxima.  This avoids materialising cross
    # products (e.g. the two opposite edges of the rectangle query).
    if strategy != "enumerate":
        from repro.query.hypergraph import QueryHypergraph

        components = QueryHypergraph(query, residual.atom_indices).connected_components()
        if len(components) > 1:
            parts = [
                boundary_multiplicity(
                    query,
                    database,
                    component,
                    strategy=strategy,
                    max_enumeration=max_enumeration,
                    backend=exec_backend,
                )
                for component in components
            ]
            return combine_component_results(
                residual,
                group_vars,
                parts,
                [query.variables_of(component) for component in components],
            )

    # Non-full queries: count distinct projections onto o_E.  The list may
    # be *empty* (no output variable realised inside E): every non-empty
    # group then projects to the single empty tuple, so the evaluation
    # below yields 1 for occupied boundary groups and 0 for an empty
    # residual — the exact version of the paper's ``T_E = 1`` convention
    # (Section 6), which matters when the disconnected-components product
    # above multiplies component values, and keeps crossing comparison
    # predicates routed through the Section 5.2 domain ranging.
    distinct_on: tuple[Variable, ...] | None = None
    if not query.is_full:
        distinct_on = tuple(residual.output_variables)

    # Predicate classification.
    dropped_comparison_or_generic = [
        p for p in residual.dropped_predicates if not p.is_inequality
    ]
    if dropped_comparison_or_generic:
        if any(
            not (p.is_inequality or p.is_comparison) for p in dropped_comparison_or_generic
        ):
            raise EvaluationError(
                "generic predicates crossing a residual boundary are not supported by "
                "the evaluation engine (Section 5.1 requires a satisfiability oracle); "
                f"offending predicates: {dropped_comparison_or_generic!r}"
            )
        return _comparison_boundary_value(
            query, database, residual, group_vars, distinct_on, max_enumeration
        )

    inside_preds = list(residual.predicates)

    if strategy not in ("auto", "enumerate", "eliminate"):
        raise EvaluationError(f"unknown strategy {strategy!r}")

    if strategy == "enumerate":
        counts = _enumerate_counts(
            query, database, residual, group_vars, distinct_on, inside_preds, max_enumeration
        )
        value, witness = _max_entry(counts)
        return MultiplicityResult(
            value=value,
            witness=witness,
            boundary=group_vars,
            strategy="enumerate",
            exact=True,
            dropped_predicates=(),
        )

    counts, dropped = _eliminate_counts(
        query, database, residual, group_vars, distinct_on, inside_preds, exec_backend
    )
    value, witness = _max_entry(counts)
    eliminate_result = MultiplicityResult(
        value=value,
        witness=witness,
        boundary=group_vars,
        strategy="eliminate",
        exact=not dropped,
        dropped_predicates=tuple(dropped),
    )
    if strategy == "eliminate" or eliminate_result.exact:
        return eliminate_result

    # auto: elimination dropped predicates — try exact enumeration under the cap.
    try:
        counts = _enumerate_counts(
            query, database, residual, group_vars, distinct_on, inside_preds, max_enumeration
        )
    except EvaluationError:
        return eliminate_result
    value, witness = _max_entry(counts)
    return MultiplicityResult(
        value=value,
        witness=witness,
        boundary=group_vars,
        strategy="enumerate",
        exact=True,
        dropped_predicates=(),
    )
