"""Optional compiled kernels for the columnar engine's inner loops.

The columnar backend (:mod:`repro.engine.columnar`) is NumPy-vectorized, but
its three hottest primitives still pay NumPy's temporary-array and dispatch
overhead on every call: ``np.unique(return_inverse=True)`` factorization,
the ``searchsorted``/``repeat``/``cumsum`` chain that expands sort-merge
join matches, and the ``np.unique`` + ``np.add.at`` pair behind group-by
aggregation.  This module provides fused single-pass replacements written
in nopython-compatible style and JIT-compiled with `numba
<https://numba.pydata.org/>`_ when it is installed (the optional
``pip install .[compiled]`` extra).

Kernel inventory (each operates on the dense ``int64`` codes of
:class:`~repro.engine.columnar.ColumnCodes`, so the factorization cache,
epoch invalidation and ``merge_factorization_delta`` work unchanged):

* ``factorize_from_order`` — single-pass dense factorization over a stable
  sort order, replacing ``np.unique(return_inverse=True)`` (used for both
  column factorization and packed-key renormalization).  Produces exactly
  ``np.unique``'s outputs: sorted distinct values and rank codes.
* ``join_expand`` — fused sorted-key join expansion: per-left-row binary
  search (the ``searchsorted`` lo/hi probe) and match materialization in one
  pass, with none of the intermediate ``repeat``/``cumsum`` range arrays.
* ``join_size`` — the probe alone, for the exact join-size estimate that
  gates the sparse-matmul path.
* ``group_reduce`` — fused group-by-accumulate over a stable sort order,
  replacing ``np.unique(return_index=True, return_inverse=True)`` +
  ``np.add.at``; first-occurrence indices match ``np.unique`` exactly.

Stable ``np.argsort(kind="stable")`` orders are computed in NumPy *outside*
the kernels, so row orderings — and therefore every downstream result — are
bit-identical to the pure-NumPy path.

**Modes.**  :func:`kernel_mode` resolves the environment to one of:

* ``"jit"`` — numba is importable; kernels are ``njit(cache=True)``-compiled
  (the on-disk cache amortizes compilation across processes, including
  spawn-context procpool workers).
* ``"interpreted"`` — ``REPRO_COMPILED_KERNELS=interpreted`` forces the same
  kernel functions to run uncompiled.  This exists so the compiled backend's
  *logic* stays testable (fuzz parity, equivalence matrices) on hosts
  without numba; it is slower than plain NumPy and never selected
  automatically.
* ``"unavailable"`` — numba is missing, or ``REPRO_NO_COMPILED=1`` /
  ``REPRO_COMPILED_KERNELS=off`` disables the tier.  The ``"compiled"``
  backend then reports unavailable, :func:`~repro.engine.backend.get_backend`
  raises a clear error for it, and ``"auto"`` selection falls back to
  ``"numpy"``.

**Warm-up.**  First-call JIT compilation costs seconds; :func:`warm_up`
triggers it eagerly on tiny inputs and is wired into service registration,
CLI ``serve`` startup and once-per-worker in the process pool, so
cold-compile latency never lands on a serving request.  It is idempotent and
thread-safe; :func:`kernel_status` reports whether (and how fast) it ran.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.exceptions import EvaluationError

__all__ = [
    "CompiledKernels",
    "DISABLE_ENV_VAR",
    "MODE_ENV_VAR",
    "get_kernels",
    "kernel_mode",
    "kernel_status",
    "kernel_version",
    "kernels_available",
    "unavailable_reason",
    "warm_up",
]

#: Setting this to anything but ``""``/``"0"`` disables the compiled tier.
DISABLE_ENV_VAR = "REPRO_NO_COMPILED"
#: ``"interpreted"`` forces uncompiled kernels (testing without numba);
#: ``"off"`` disables the tier; ``"jit"``/empty means autodetect numba.
MODE_ENV_VAR = "REPRO_COMPILED_KERNELS"


# --------------------------------------------------------------------- #
# Kernel bodies (nopython-compatible: plain loops, int64 arrays only)
# --------------------------------------------------------------------- #
def _k_factorize_from_order(col, order):
    """Dense factorization of ``col`` given its stable sort ``order``.

    Returns ``(codes, uniq_pos, count)``: ``codes[i]`` is the rank of
    ``col[i]`` among the sorted distinct values, ``uniq_pos[:count]`` holds
    the original index of the first occurrence (in sorted order, hence the
    *minimal* original index under a stable sort) of each distinct value —
    so ``col[uniq_pos[:count]]`` equals ``np.unique(col)`` and ``codes``
    equals ``np.unique``'s ``return_inverse``.
    """
    n = col.shape[0]
    codes = np.empty(n, dtype=np.int64)
    uniq_pos = np.empty(n, dtype=np.int64)
    count = 0
    prev = np.int64(0)
    for i in range(n):
        idx = order[i]
        value = col[idx]
        if i == 0 or value != prev:
            uniq_pos[count] = idx
            count += 1
            prev = value
        codes[idx] = count - 1
    return codes, uniq_pos, count


def _k_join_expand(lkey, rsorted, order):
    """Fused sorted-key join expansion.

    For every left row, binary-search its ``[lo, hi)`` match range in the
    sorted right codes (the ``searchsorted`` probe) and materialise the
    matching ``(left_idx, right_idx)`` pairs directly — one pass, no
    intermediate ``repeat``/``cumsum`` range arrays.  ``order`` is the
    stable argsort of the right codes, so the emitted pair order is
    identical to the NumPy expansion's.
    """
    nl = lkey.shape[0]
    nr = rsorted.shape[0]
    los = np.empty(nl, dtype=np.int64)
    his = np.empty(nl, dtype=np.int64)
    total = np.int64(0)
    for i in range(nl):
        key = lkey[i]
        lo = np.int64(0)
        hi = np.int64(nr)
        while lo < hi:
            mid = (lo + hi) // 2
            if rsorted[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        lower = lo
        hi = np.int64(nr)
        while lo < hi:
            mid = (lo + hi) // 2
            if rsorted[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        los[i] = lower
        his[i] = lo
        total += lo - lower
    left_idx = np.empty(total, dtype=np.int64)
    right_idx = np.empty(total, dtype=np.int64)
    pos = 0
    for i in range(nl):
        for j in range(los[i], his[i]):
            left_idx[pos] = i
            right_idx[pos] = order[j]
            pos += 1
    return left_idx, right_idx


def _k_join_size(lkey, rsorted):
    """Exact number of join matches (the probe of ``_k_join_expand`` alone)."""
    nl = lkey.shape[0]
    nr = rsorted.shape[0]
    total = np.int64(0)
    for i in range(nl):
        key = lkey[i]
        lo = np.int64(0)
        hi = np.int64(nr)
        while lo < hi:
            mid = (lo + hi) // 2
            if rsorted[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        lower = lo
        hi = np.int64(nr)
        while lo < hi:
            mid = (lo + hi) // 2
            if rsorted[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        total += lo - lower
    return total


def _k_group_reduce(codes, counts, order):
    """Fused group-by-accumulate of ``counts`` over ``codes`` groups.

    Given the stable sort ``order`` of ``codes``, emits per-group
    first-occurrence indices (minimal original index, matching
    ``np.unique(return_index=True)``) and count sums (matching
    ``np.add.at`` over ``return_inverse``), grouped in ascending code
    order.  Returns ``(first_idx, sums, count)``.
    """
    n = codes.shape[0]
    first_idx = np.empty(n, dtype=np.int64)
    sums = np.zeros(n, dtype=np.int64)
    count = 0
    prev = np.int64(0)
    for i in range(n):
        idx = order[i]
        code = codes[idx]
        if i == 0 or code != prev:
            first_idx[count] = idx
            count += 1
            prev = code
        sums[count - 1] += counts[idx]
    return first_idx, sums, count


_KERNEL_BODIES = {
    "factorize_from_order": _k_factorize_from_order,
    "join_expand": _k_join_expand,
    "join_size": _k_join_size,
    "group_reduce": _k_group_reduce,
}


# --------------------------------------------------------------------- #
# Mode resolution
# --------------------------------------------------------------------- #
def _numba_module():
    try:
        import numba
    except Exception:
        return None
    return numba


def kernel_mode() -> str:
    """The effective kernel mode: ``"jit"``, ``"interpreted"`` or
    ``"unavailable"`` (resolved from the environment on every call, so tests
    and operators can flip modes without re-importing)."""
    if os.environ.get(DISABLE_ENV_VAR, "").strip() not in ("", "0"):
        return "unavailable"
    forced = os.environ.get(MODE_ENV_VAR, "").strip().lower()
    if forced == "interpreted":
        return "interpreted"
    if forced == "off":
        return "unavailable"
    if _numba_module() is not None:
        return "jit"
    return "unavailable"


def kernels_available() -> bool:
    """Whether the compiled tier can serve (JIT or forced-interpreted)."""
    return kernel_mode() != "unavailable"


def unavailable_reason() -> str | None:
    """Why the compiled tier is unavailable (``None`` when it is available)."""
    if os.environ.get(DISABLE_ENV_VAR, "").strip() not in ("", "0"):
        return f"disabled by {DISABLE_ENV_VAR}={os.environ[DISABLE_ENV_VAR]!r}"
    if os.environ.get(MODE_ENV_VAR, "").strip().lower() == "off":
        return f"disabled by {MODE_ENV_VAR}=off"
    if kernel_mode() == "unavailable":
        return "numba is not installed (pip install .[compiled])"
    return None


def kernel_version() -> str | None:
    """The numba version in JIT mode, ``"interpreted"`` in forced-interpreted
    mode, ``None`` when unavailable."""
    mode = kernel_mode()
    if mode == "jit":
        numba = _numba_module()
        return getattr(numba, "__version__", "unknown") if numba else None
    if mode == "interpreted":
        return "interpreted"
    return None


# --------------------------------------------------------------------- #
# Kernel table construction
# --------------------------------------------------------------------- #
_TABLE_LOCK = threading.Lock()
_JIT_TABLE: dict | None = None


def _kernel_table(mode: str) -> dict:
    if mode == "interpreted":
        return _KERNEL_BODIES
    global _JIT_TABLE
    with _TABLE_LOCK:
        if _JIT_TABLE is None:
            numba = _numba_module()
            if numba is None:  # pragma: no cover - guarded by callers
                raise EvaluationError("numba is not installed")
            jit = numba.njit(cache=True, nogil=True)
            _JIT_TABLE = {
                name: jit(body) for name, body in _KERNEL_BODIES.items()
            }
        return _JIT_TABLE


class CompiledKernels:
    """The kernel hook object the compiled backend installs context-locally.

    :mod:`repro.engine.columnar` consults the active instance at each hook
    point; every method either returns kernel results or ``None`` to signal
    "fall back to the NumPy path" (unsupported dtype).  Kernels only handle
    ``int64`` data — exactly the dense-code representation the columnar
    engine runs on — so object columns, strings and floats take the same
    ``np.unique`` paths as the ``numpy`` backend.
    """

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self._table = _kernel_table(mode)

    # -- factorization ------------------------------------------------ #
    def factorize(self, col: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
        """``(codes, values)`` equal to ``np.unique(col, return_inverse=True)``
        (values sorted ascending, codes = ranks), or ``None`` for dtypes the
        kernels do not handle."""
        if col.dtype != np.int64:
            return None
        if len(col) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        order = np.argsort(col, kind="stable")
        codes, uniq_pos, count = self._table["factorize_from_order"](col, order)
        return codes, col[uniq_pos[:count]]

    def renormalize(self, codes: np.ndarray) -> tuple[np.ndarray, int]:
        """Re-factorize packed ``int64`` row codes into a dense range."""
        if len(codes) == 0:
            return np.empty(0, dtype=np.int64), 1
        order = np.argsort(codes, kind="stable")
        dense, _, count = self._table["factorize_from_order"](codes, order)
        return dense, max(int(count), 1)

    # -- join expansion ------------------------------------------------ #
    def expand_matches(
        self, lkey: np.ndarray, rsorted: np.ndarray, order: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Matching ``(left_idx, right_idx)`` pairs of a sorted-key join, in
        the same order as the NumPy ``searchsorted``/``repeat`` expansion."""
        if len(lkey) == 0 or len(rsorted) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return self._table["join_expand"](lkey, rsorted, order)

    def match_total(self, lkey: np.ndarray, rsorted: np.ndarray) -> int:
        """Exact number of matches the join would produce."""
        if len(lkey) == 0 or len(rsorted) == 0:
            return 0
        return int(self._table["join_size"](lkey, rsorted))

    # -- group-by ------------------------------------------------------ #
    def group_reduce(
        self, codes: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-group ``(first_idx, sums)`` matching ``np.unique`` +
        ``np.add.at`` exactly (groups in ascending code order)."""
        if len(codes) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        order = np.argsort(codes, kind="stable")
        first_idx, sums, count = self._table["group_reduce"](codes, counts, order)
        return first_idx[:count], sums[:count]


_KERNELS_LOCK = threading.Lock()
_KERNELS_BY_MODE: dict[str, CompiledKernels] = {}


def get_kernels() -> CompiledKernels:
    """The :class:`CompiledKernels` instance for the current mode.

    Raises :class:`~repro.exceptions.EvaluationError` with the concrete
    reason (and the install hint) when the compiled tier is unavailable.
    """
    mode = kernel_mode()
    if mode == "unavailable":
        raise EvaluationError(
            "the 'compiled' execution backend is unavailable: "
            f"{unavailable_reason()}; select backend 'numpy' or 'auto' instead"
        )
    with _KERNELS_LOCK:
        kernels = _KERNELS_BY_MODE.get(mode)
        if kernels is None:
            kernels = CompiledKernels(mode)
            _KERNELS_BY_MODE[mode] = kernels
        return kernels


# --------------------------------------------------------------------- #
# Warm-up
# --------------------------------------------------------------------- #
_WARM_LOCK = threading.Lock()
#: Per-mode warm-up record: ``mode -> {"seconds": float}``.
_WARMED: dict[str, dict] = {}


def warm_up() -> dict:
    """Eagerly exercise every kernel on tiny inputs (triggering JIT
    compilation in ``"jit"`` mode) — once per process per mode.

    Returns the :func:`kernel_status` dict.  Wired into service-side database
    registration, CLI ``serve`` startup, and once-per-worker in the process
    pool; numba's on-disk cache (``cache=True``) amortizes compilation across
    worker processes of one host.  A no-op when the tier is unavailable.
    """
    mode = kernel_mode()
    if mode == "unavailable":
        return kernel_status()
    with _WARM_LOCK:
        if mode not in _WARMED:
            start = time.perf_counter()
            kernels = get_kernels()
            col = np.array([3, 1, 3, 2], dtype=np.int64)
            kernels.factorize(col)
            kernels.renormalize(col)
            rkey = np.array([2, 1, 2], dtype=np.int64)
            order = np.argsort(rkey, kind="stable")
            kernels.expand_matches(col % 3, rkey[order], order)
            kernels.match_total(col % 3, rkey[order])
            kernels.group_reduce(col % 2, np.ones(4, dtype=np.int64))
            _WARMED[mode] = {"seconds": time.perf_counter() - start}
    return kernel_status()


def kernel_status() -> dict:
    """A JSON-serialisable status block for ``/stats``, ``describe()`` and
    the ``repro-dp backends`` CLI."""
    mode = kernel_mode()
    warm = _WARMED.get(mode)
    status: dict = {
        "mode": mode,
        "available": mode != "unavailable",
        "requirement": "numba (pip install .[compiled])",
        "version": kernel_version(),
        "warm": warm is not None,
        "warm_up_seconds": round(warm["seconds"], 6) if warm else None,
    }
    reason = unavailable_reason()
    if reason:
        status["reason"] = reason
    return status
