"""Structured JSON request logging with a pinned schema.

One line per served request, machine-parseable, schema-pinned: the line a
deployment ships to its log pipeline and reconciles against the audit log.
The schema (:data:`LOG_SCHEMA`) is validated by :func:`validate_log_line` —
used by the tests and by ``scripts/check_metrics.py`` against a live server
— with a tiny built-in validator so no external jsonschema dependency is
needed.

Slow-query logging: a :class:`RequestLogger` built with ``slow_ms`` marks
any request whose wall time exceeds the threshold with ``"slow": true`` and
emits it at WARNING level (everything else is INFO), so ``grep '"slow": '``
— or a log-level filter — surfaces the tail without a metrics query.
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import Any, IO, Mapping

__all__ = ["LOG_SCHEMA", "RequestLogger", "validate_log_line"]

#: Version stamped into every line; bump when the schema changes shape.
LOG_SCHEMA_VERSION = 1

#: The pinned schema: field → (types, required).  ``None`` is allowed for
#: every nullable field; extra fields are rejected by the validator so the
#: contract cannot drift silently.
LOG_SCHEMA: dict[str, tuple[tuple[type, ...], bool]] = {
    "v": ((int,), True),                    # LOG_SCHEMA_VERSION
    "ts": ((float, int), True),             # unix seconds
    "level": ((str,), True),                # "info" | "warning" | "error"
    "event": ((str,), True),                # "request"
    "endpoint": ((str,), True),             # "count" | "batch" | ...
    "trace_id": ((str, type(None)), True),  # null when tracing was off
    "session": ((str, type(None)), True),
    "database": ((str, type(None)), True),
    "query_key": ((str, type(None)), True),  # canonical shape key
    "method": ((str, type(None)), True),
    "status": ((str,), True),               # "ok" | "error"
    "error": ((str, type(None)), True),
    "epsilon": ((float, int, type(None)), True),
    "duration_ms": ((float, int), True),
    "slow": ((bool,), True),
    "backend": ((str, type(None)), False),
    "cache": ((dict, type(None)), False),   # {"plan": bool, ...}
}

_LEVELS = ("info", "warning", "error")
_STATUSES = ("ok", "error")


def validate_log_line(line: str | Mapping[str, Any]) -> dict[str, Any]:
    """Parse + validate one JSON log line against :data:`LOG_SCHEMA`.

    Returns the parsed record; raises ``ValueError`` with a precise message
    on any violation (bad JSON, missing/unknown fields, wrong types, bad
    enum values, negative duration).
    """
    if isinstance(line, str):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"log line is not valid JSON: {exc}") from None
    else:
        record = dict(line)
    if not isinstance(record, dict):
        raise ValueError(f"log line must be a JSON object, got {type(record).__name__}")
    unknown = set(record) - set(LOG_SCHEMA)
    if unknown:
        raise ValueError(f"log line has unknown fields: {sorted(unknown)}")
    for field, (types, required) in LOG_SCHEMA.items():
        if field not in record:
            if required:
                raise ValueError(f"log line is missing required field {field!r}")
            continue
        value = record[field]
        if not isinstance(value, types) or (
            isinstance(value, bool) and bool not in types
        ):
            raise ValueError(
                f"log field {field!r} has type {type(value).__name__}, "
                f"expected one of {[t.__name__ for t in types]}"
            )
    if record["v"] != LOG_SCHEMA_VERSION:
        raise ValueError(
            f"log schema version {record['v']} != pinned {LOG_SCHEMA_VERSION}"
        )
    if record["level"] not in _LEVELS:
        raise ValueError(f"log level must be one of {_LEVELS}, got {record['level']!r}")
    if record["status"] not in _STATUSES:
        raise ValueError(
            f"log status must be one of {_STATUSES}, got {record['status']!r}"
        )
    if record["duration_ms"] < 0:
        raise ValueError(f"duration_ms must be non-negative, got {record['duration_ms']}")
    return record


class RequestLogger:
    """Emits one schema-pinned JSON line per request to a text stream.

    Parameters
    ----------
    stream:
        Writable text stream (e.g. ``sys.stderr`` or an opened log file).
        Writes are serialised by an internal lock so concurrent request
        threads never interleave partial lines.
    slow_ms:
        Wall-time threshold (milliseconds) above which a request is marked
        ``"slow": true`` and logged at WARNING.  ``None`` disables slow
        marking entirely.
    """

    def __init__(self, stream: IO[str], *, slow_ms: float | None = None):
        if slow_ms is not None and slow_ms < 0:
            raise ValueError(f"slow_ms must be non-negative, got {slow_ms}")
        self._stream = stream
        self.slow_ms = slow_ms
        self._lock = threading.Lock()
        self._lines_written = 0
        self._slow_seen = 0

    def log_request(
        self,
        *,
        endpoint: str,
        duration_ms: float,
        status: str = "ok",
        trace_id: str | None = None,
        session: str | None = None,
        database: str | None = None,
        query_key: str | None = None,
        method: str | None = None,
        error: str | None = None,
        epsilon: float | None = None,
        backend: str | None = None,
        cache: Mapping[str, bool] | None = None,
    ) -> dict[str, Any]:
        """Build, write and return one request record."""
        slow = self.slow_ms is not None and duration_ms > self.slow_ms
        level = "error" if status == "error" else ("warning" if slow else "info")
        record: dict[str, Any] = {
            "v": LOG_SCHEMA_VERSION,
            "ts": time.time(),
            "level": level,
            "event": "request",
            "endpoint": endpoint,
            "trace_id": trace_id,
            "session": session,
            "database": database,
            "query_key": query_key,
            "method": method,
            "status": status,
            "error": error,
            "epsilon": epsilon,
            "duration_ms": round(float(duration_ms), 3),
            "slow": slow,
        }
        if backend is not None:
            record["backend"] = backend
        if cache is not None:
            record["cache"] = dict(cache)
        line = json.dumps(record, separators=(",", ":"), allow_nan=False)
        with self._lock:
            self._stream.write(line + "\n")
            try:
                self._stream.flush()
            except (ValueError, io.UnsupportedOperation):  # closed/unflushable
                pass
            self._lines_written += 1
            if slow:
                self._slow_seen += 1
        return record

    @property
    def lines_written(self) -> int:
        """Number of records emitted."""
        with self._lock:
            return self._lines_written

    @property
    def slow_seen(self) -> int:
        """Number of records marked slow."""
        with self._lock:
            return self._slow_seen
