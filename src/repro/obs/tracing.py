"""Request-scoped tracing: trace ids, nested spans, wall/CPU timings.

A *trace* is the tree of timed spans produced while serving one request
(``/count``, ``/batch``, a CLI invocation).  The design goals, in order:

1. **Zero cost when off.**  Tracing is *ambient*: lower layers (the batch
   executor, the shared-lattice profiler, both execution backends) call the
   module-level :func:`span` without knowing whether anyone is listening.
   When no trace is active — the common case, since per-request timing
   breakdowns are opt-in — :func:`span` returns a shared no-op context
   manager after a single ``ContextVar.get``.  The warm serving path stays
   within the instrumentation budget gated by ``bench_service.py``.
2. **Correct nesting across threads.**  The ambient span lives in a
   :class:`contextvars.ContextVar`, so concurrent requests on different
   threads never see each other's spans.  Code that fans work out to a
   thread pool propagates the ambient span explicitly with
   :func:`current_span` + :func:`activate` (pool workers start with an
   empty context).
3. **Spans always close.**  :class:`Span` is only ever used as a context
   manager; an exception inside marks the span ``status="error"`` (with the
   exception text) and still records a non-negative duration.

Span taxonomy and attribute conventions are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
import uuid
from contextvars import ContextVar
from typing import Any, Iterator

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "activate",
    "current_span",
    "span",
]

#: The ambient span of the current logical context (``None``: tracing off).
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)

#: Process-wide span-id sequence (unique within a process, cheap to draw).
_SPAN_IDS = itertools.count(1)


def _new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation: a name, wall/CPU clocks, attributes, children.

    Create spans through :class:`Tracer.trace` (roots) or :func:`span`
    (children of the ambient span); both return context managers.  A span
    records:

    ``trace_id`` / ``span_id`` / ``parent_id``
        The request-scoped trace id (shared by the whole tree), this span's
        id, and the parent span's id (``None`` for the root).
    ``duration_ms`` / ``cpu_ms``
        Wall time (``perf_counter``) and CPU time (``process_time``) between
        ``__enter__`` and ``__exit__``; both are clamped non-negative.
    ``attributes``
        Arbitrary JSON-serialisable key/values (``set`` merges).
    ``status`` / ``error``
        ``"ok"``, or ``"error"`` plus the exception text when the body
        raised.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "children",
        "status",
        "error",
        "duration_ms",
        "cpu_ms",
        "_wall_start",
        "_cpu_start",
        "_token",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent: "Span | None" = None,
        attributes: dict[str, Any] | None = None,
    ):
        self.name = name
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self.span_id = next(_SPAN_IDS)
        self.parent_id = parent.span_id if parent is not None else None
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.children: list[Span] = []
        self.status = "ok"
        self.error: str | None = None
        self.duration_ms: float | None = None
        self.cpu_ms: float | None = None
        self._wall_start: float | None = None
        self._cpu_start: float | None = None
        self._token = None
        # Guards ``children``: siblings can be appended from pool threads
        # (the batch executor fans groups out under one batch span).
        self._lock = threading.Lock()

    # -- context manager ------------------------------------------------ #
    def __enter__(self) -> "Span":
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self.duration_ms = max(0.0, (time.perf_counter() - self._wall_start) * 1e3)
        self.cpu_ms = max(0.0, (time.process_time() - self._cpu_start) * 1e3)
        if exc is not None:
            self.status = "error"
            self.error = f"{type(exc).__name__}: {exc}"
        return False  # never swallow

    # -- recording ------------------------------------------------------ #
    def set(self, **attributes: Any) -> "Span":
        """Merge attributes into the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def child(self, name: str, **attributes: Any) -> "Span":
        """A new child span (enter it with ``with``)."""
        child = Span(name, trace_id=self.trace_id, parent=self, attributes=attributes)
        with self._lock:
            self.children.append(child)
        return child

    # -- views ----------------------------------------------------------- #
    @property
    def closed(self) -> bool:
        """Whether the span has recorded its duration."""
        return self.duration_ms is not None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable view of the span tree rooted here."""
        with self._lock:
            children = list(self.children)
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "status": self.status,
            "error": self.error,
            "duration_ms": self.duration_ms,
            "cpu_ms": self.cpu_ms,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in children],
        }

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant (depth-first)."""
        yield self
        with self._lock:
            children = list(self.children)
        for child in children:
            yield from child.walk()

    def stage_timings(self) -> dict[str, float]:
        """Per-direct-child wall-time breakdown summing exactly to the total.

        Children sharing a name are summed; the remainder of the root's wall
        time not covered by any child is reported under ``"other"``, so
        ``sum(values) == total`` (the contract the opt-in per-request
        ``timings`` block relies on).  Only meaningful on a closed span.
        """
        total = self.duration_ms or 0.0
        stages: dict[str, float] = {}
        with self._lock:
            children = list(self.children)
        for child in children:
            stages[child.name] = stages.get(child.name, 0.0) + (child.duration_ms or 0.0)
        stages["other"] = max(0.0, total - sum(stages.values()))
        stages["total"] = total
        return stages


class _NullSpan:
    """The shared do-nothing span used when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":  # noqa: ARG002 - no-op
        return self


NULL_SPAN = _NullSpan()


def current_span() -> Span | None:
    """The ambient span of the calling context (``None``: tracing off)."""
    return _CURRENT_SPAN.get()


def span(name: str, **attributes: Any):
    """A child span of the ambient span — or a shared no-op without one.

    The single tracing entry point for the lower layers (executor, profiler,
    backends): always safe to call, near-free when nobody asked for a trace.
    """
    parent = _CURRENT_SPAN.get()
    if parent is None:
        return NULL_SPAN
    return parent.child(name, **attributes)


@contextlib.contextmanager
def activate(target: Span | None):
    """Re-establish ``target`` as the ambient span in *this* context.

    Thread pools start workers with an empty context, severing the ambient
    chain; callers capture :func:`current_span` before submitting and wrap
    the worker body in ``activate(captured)`` so children attach to the
    right parent.  ``activate(None)`` is a no-op context.
    """
    if target is None:
        yield None
        return
    token = _CURRENT_SPAN.set(target)
    try:
        yield target
    finally:
        _CURRENT_SPAN.reset(token)


class Tracer:
    """Creates root spans and counts traces.

    One tracer per :class:`~repro.service.service.PrivateQueryService`; a
    disabled tracer (``enabled=False``) hands out :data:`NULL_SPAN` so the
    whole span machinery collapses to one attribute check.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._traces_started = 0
        self._lock = threading.Lock()

    def trace(self, name: str, **attributes: Any):
        """A new root span (fresh trace id) — or a no-op when disabled.

        If an ambient span is already active (e.g. a ``/batch`` item running
        inside the batch trace), the "root" attaches as its child instead of
        starting a disconnected second trace.
        """
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            self._traces_started += 1
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            return parent.child(name, **attributes)
        return Span(name, attributes=dict(attributes))

    @property
    def traces_started(self) -> int:
        """Number of root spans handed out."""
        with self._lock:
            return self._traces_started
