"""A small metrics substrate: counters, gauges, histograms, Prometheus text.

Deliberately dependency-free (the whole library is stdlib + numpy) and
deliberately small: three instrument kinds, a registry, and a renderer/parser
pair for the Prometheus text exposition format (version 0.0.4) so the
``GET /metrics`` endpoint and its tests speak the same dialect.

Design constraints, driven by the serving layer's hot path:

* **Cheap recording.**  ``labels()`` resolves a label set once to a
  :class:`_Series` handle; the serving layer resolves its hot handles at
  construction time, so a request costs a handful of ``inc``/``observe``
  calls — each one lock acquire + one float add (histograms additionally do
  a ``bisect`` over ~10 boundaries).
* **Bounded label sets.**  Every metric caps the number of distinct label
  combinations (default 64).  Past the cap, new combinations collapse into
  a single ``"_overflow"`` series instead of growing without bound — a
  misbehaving client cannot turn query strings into a cardinality explosion.
* **Fixed histogram buckets.**  Buckets are chosen at declaration time and
  never change, so scrapes are always comparable across time.

Gauges may be *callback-backed* (``set_function``), and individual counter
series likewise (``Counter.set_callback``): the value is read at render
time, which is how the serving layer exposes live facts (active sessions,
remaining shared budget, journal seq) and monotonic totals it already
maintains (cache hits, requests served, ε charged) without write-path
hooks — the scrape pays, not the request.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.exceptions import ServiceError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
    "DEFAULT_IO_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Request-latency bucket boundaries in **seconds** — sub-millisecond warm
#: cache hits through multi-second cold profile evaluations.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

#: Fast-path bucket boundaries in **seconds** — journal appends and budget
#: ledger charges, which complete in microseconds uncontended and stretch
#: into milliseconds under lock contention or fsync.
DEFAULT_IO_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1
)

#: The label value absorbed by combinations past a metric's cardinality cap.
OVERFLOW_LABEL = "_overflow"

#: Buffered histogram handles self-drain past this many queued observations,
#: bounding memory between scrapes (~150 KB of floats per series worst case).
PENDING_DRAIN_THRESHOLD = 4096


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


class _Series:
    """One (metric, label-set) time series: the object hot paths hold."""

    __slots__ = (
        "labels", "_lock", "value", "bucket_counts", "sum", "count", "callback", "pending"
    )

    def __init__(self, labels: tuple[str, ...], buckets: int = 0):
        self.labels = labels
        self._lock = threading.Lock()
        self.value = 0.0
        # Histogram-only state (per-bucket non-cumulative counts).
        self.bucket_counts = [0] * buckets if buckets else None
        self.sum = 0.0
        self.count = 0
        # Scrape-time callback (counters/gauges); see Counter.set_callback.
        self.callback: Callable[[], float] | None = None
        # Raw observations awaiting binning (histogram bound handles).  The
        # hot path appends lock-free — list.append is a single atomic
        # bytecode under the GIL — and drain() bins them under the lock.
        self.pending: list[float] = []

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def observe_at(self, index: int, value: float) -> None:
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1

    def drain(self, buckets: Sequence[float]) -> None:
        """Bin buffered observations (scrape time, or past the cap).

        Appenders never take the lock, so the slice/del pair must run under
        it to serialize concurrent drains; each list operation is atomic
        under the GIL, and appends that land mid-drain simply stay queued
        for the next one.
        """
        with self._lock:
            queue = self.pending
            n = len(queue)
            if not n:
                return
            values = queue[:n]
            del queue[:n]
            counts = self.bucket_counts
            for value in values:
                counts[bisect.bisect_left(buckets, value)] += 1
                self.sum += value
            self.count += n


class _Metric:
    """Shared machinery: label resolution, the cardinality cap, help text."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - mirrors the exposition format field
        labelnames: Sequence[str] = (),
        *,
        max_series: int = 64,
        _buckets: int = 0,
    ):
        if not _NAME_RE.match(name):
            raise ServiceError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ServiceError(f"invalid label name {label!r} on metric {name!r}")
        if max_series <= 0:
            raise ServiceError(f"max_series must be positive, got {max_series}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        # Constant labels stamped on every rendered series (e.g. the cluster
        # worker id); set by the registry at declaration time.  Empty for a
        # plain registry, so default rendering is byte-identical.
        self.const_labels: dict[str, str] = {}
        self._max_series = max_series
        self._bucket_slots = _buckets
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], _Series] = {}
        if not self.labelnames:
            self._default = self._series[()] = _Series((), _buckets)
        else:
            self._default = None

    def labels(self, **labels: str) -> _Series:
        """The series handle of one label combination (created on first use).

        Unknown/missing label names raise; combinations beyond the
        cardinality cap share the ``_overflow`` series.
        """
        if set(labels) != set(self.labelnames):
            raise ServiceError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        series = self._series.get(key)
        if series is not None:
            return series
        with self._lock:
            series = self._series.get(key)
            if series is not None:
                return series
            if len(self._series) >= self._max_series:
                key = tuple(OVERFLOW_LABEL for _ in self.labelnames)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series(key, self._bucket_slots)
            return series

    def _snapshot(self) -> list[_Series]:
        with self._lock:
            return list(self._series.values())


class Counter(_Metric):
    """A monotonically increasing value (requests, hits, ε charged...).

    A series may be *callback-backed* (:meth:`set_callback`): its value is
    read at scrape time from a monotonic total the instrumented subsystem
    already maintains (cache hit counters, requests served, ε charged).
    This keeps the serving hot path free of per-request lock traffic — the
    counter costs nothing until someone scrapes it.
    """

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be ≥ 0) to the (labelled) counter."""
        if amount < 0:
            raise ServiceError(f"counter {self.name!r} cannot decrease (amount {amount})")
        (self._default if not labels and self._default is not None else self.labels(**labels)).inc(
            amount
        )

    def set_callback(self, callback: Callable[[], float], **labels: str) -> "Counter":
        """Back one series with a scrape-time callback.

        The callback must return a monotonically non-decreasing total (it is
        the caller's counter, merely exposed); any ``inc`` on the same series
        is ignored once a callback is installed.
        """
        series = self._default if not labels and self._default is not None else self.labels(**labels)
        series.callback = callback
        return self

    def value(self, **labels: str) -> float:
        """The current value of one series (0.0 if never touched)."""
        series = self._default if not labels and self._default is not None else self.labels(**labels)
        if series.callback is not None:
            return float(series.callback())
        return series.value

    def render(self) -> Iterable[str]:
        for series in self._snapshot():
            labels = {**self.const_labels, **dict(zip(self.labelnames, series.labels))}
            if series.callback is not None:
                try:
                    value = float(series.callback())
                except Exception:  # a broken callback must not kill the scrape
                    value = float("nan")
            else:
                value = series.value
            yield f"{self.name}{_render_labels(labels)} {_format_value(value)}"


class Gauge(_Metric):
    """A value that can go up and down — or be computed at scrape time."""

    kind = "gauge"

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._callback: Callable[[], float] | None = None

    def set(self, value: float, **labels: str) -> None:
        """Set the (labelled) gauge to ``value``."""
        (self._default if not labels and self._default is not None else self.labels(**labels)).set(
            value
        )

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the (labelled) gauge."""
        (self._default if not labels and self._default is not None else self.labels(**labels)).inc(
            amount
        )

    def set_function(self, callback: Callable[[], float]) -> "Gauge":
        """Back the (label-less) gauge with a scrape-time callback."""
        if self.labelnames:
            raise ServiceError(
                f"callback gauges cannot have labels (metric {self.name!r})"
            )
        self._callback = callback
        return self

    def value(self, **labels: str) -> float:
        """The current value of one series."""
        if self._callback is not None:
            return float(self._callback())
        series = self._default if not labels and self._default is not None else self.labels(**labels)
        return series.value

    def render(self) -> Iterable[str]:
        if self._callback is not None:
            try:
                value = float(self._callback())
            except Exception:  # a broken callback must not kill the scrape
                value = float("nan")
            yield f"{self.name}{_render_labels(self.const_labels)} {_format_value(value)}"
            return
        for series in self._snapshot():
            labels = {**self.const_labels, **dict(zip(self.labelnames, series.labels))}
            yield f"{self.name}{_render_labels(labels)} {_format_value(series.value)}"


class Histogram(_Metric):
    """A distribution over fixed bucket boundaries (latencies, sizes).

    ``buckets`` are the *upper bounds* of the finite buckets, strictly
    increasing; an implicit ``+Inf`` bucket is always appended.  Rendering
    follows the Prometheus convention: cumulative ``_bucket{le=...}``
    samples plus ``_sum`` and ``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        max_series: int = 64,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ServiceError(
                f"histogram {name!r} buckets must be strictly increasing and non-empty"
            )
        if any(not math.isfinite(b) for b in bounds):
            raise ServiceError(f"histogram {name!r} buckets must be finite (+Inf is implicit)")
        self.buckets = bounds
        super().__init__(
            name, help, labelnames, max_series=max_series, _buckets=len(bounds) + 1
        )

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation."""
        series = self._default if not labels and self._default is not None else self.labels(**labels)
        series.observe_at(bisect.bisect_left(self.buckets, value), value)

    def bind(self, **labels: str) -> Callable[[float], None]:
        """A pre-resolved *buffered* observe callable for one label set.

        The handle hot paths hold: label resolution happens once, here, and
        each call is one lock-free ``list.append`` (binning is deferred to
        scrape time, or to every :data:`PENDING_DRAIN_THRESHOLD` values, so
        the request path touches as few cache lines as possible).
        """
        series = self._default if not labels and self._default is not None else self.labels(**labels)
        buckets = self.buckets
        pending = series.pending

        def observe(
            value: float,
            _append=pending.append,
            _pending=pending,
            _series=series,
            _buckets=buckets,
        ) -> None:
            _append(value)
            if len(_pending) >= PENDING_DRAIN_THRESHOLD:
                _series.drain(_buckets)

        return observe

    def snapshot(self, **labels: str) -> dict[str, Any]:
        """``{"count", "sum", "buckets": {le: cumulative}}`` of one series."""
        series = self._default if not labels and self._default is not None else self.labels(**labels)
        series.drain(self.buckets)
        with series._lock:
            counts = list(series.bucket_counts)
            total, count = series.sum, series.count
        cumulative: dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            cumulative[_format_value(bound)] = running
        cumulative["+Inf"] = running + counts[-1]
        return {"count": count, "sum": total, "buckets": cumulative}

    def render(self) -> Iterable[str]:
        for series in self._snapshot():
            labels = {**self.const_labels, **dict(zip(self.labelnames, series.labels))}
            series.drain(self.buckets)
            with series._lock:
                counts = list(series.bucket_counts)
                total, count = series.sum, series.count
            running = 0
            for bound, bucket_count in zip(self.buckets, counts):
                running += bucket_count
                bucket_labels = {**labels, "le": _format_value(bound)}
                yield f"{self.name}_bucket{_render_labels(bucket_labels)} {running}"
            running += counts[-1]
            yield f"{self.name}_bucket{_render_labels({**labels, 'le': '+Inf'})} {running}"
            yield f"{self.name}_sum{_render_labels(labels)} {_format_value(total)}"
            yield f"{self.name}_count{_render_labels(labels)} {count}"


class MetricsRegistry:
    """A named collection of metrics with idempotent declaration.

    ``counter``/``gauge``/``histogram`` return the existing metric when the
    name was already declared (and raise if it was declared as a different
    kind), so independent modules can share instruments by name.

    ``const_labels`` are stamped on every series the registry renders — the
    cluster dispatcher gives each worker a ``{"worker": "wN"}`` registry so
    a merged scrape can tell the processes apart.  A registry without const
    labels renders byte-identically to earlier versions.
    """

    def __init__(self, const_labels: Mapping[str, str] | None = None) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._const_labels: dict[str, str] = {}
        if const_labels:
            for label, value in const_labels.items():
                if not _LABEL_RE.match(label) or label.startswith("__"):
                    raise ServiceError(f"invalid constant label name {label!r}")
                self._const_labels[label] = str(value)

    @property
    def const_labels(self) -> dict[str, str]:
        """The labels stamped on every rendered series (a copy)."""
        return dict(self._const_labels)

    def _declare(self, cls, name: str, help: str, labelnames=(), **kwargs) -> Any:  # noqa: A002
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or tuple(labelnames) != existing.labelnames:
                    raise ServiceError(
                        f"metric {name!r} already declared as {existing.kind} "
                        f"with labels {list(existing.labelnames)}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            if self._const_labels:
                metric.const_labels = dict(self._const_labels)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames=(), **kwargs) -> Counter:  # noqa: A002
        """Declare (or fetch) a counter."""
        return self._declare(Counter, name, help, labelnames, **kwargs)

    def gauge(self, name: str, help: str = "", labelnames=(), **kwargs) -> Gauge:  # noqa: A002
        """Declare (or fetch) a gauge."""
        return self._declare(Gauge, name, help, labelnames, **kwargs)

    def histogram(self, name: str, help: str = "", labelnames=(), **kwargs) -> Histogram:  # noqa: A002
        """Declare (or fetch) a histogram."""
        return self._declare(Histogram, name, help, labelnames, **kwargs)

    def get(self, name: str) -> _Metric | None:
        """The metric registered under ``name``, if any."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# Scrape parsing (shared by tests and scripts/check_metrics.py)
# --------------------------------------------------------------------- #
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse Prometheus text format into ``{metric: {type, help, samples}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``.  Raises
    :class:`~repro.exceptions.ServiceError` on any malformed line — the
    validation the ``/metrics`` tests and ``scripts/check_metrics.py`` run
    against a live scrape.
    """
    families: dict[str, dict[str, Any]] = {}

    def family_of(sample_name: str) -> dict[str, Any]:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name.removesuffix(suffix)
            if trimmed != sample_name and trimmed in families:
                base = trimmed
                break
        return families.setdefault(
            base, {"type": "untyped", "help": "", "samples": []}
        )

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                family = families.setdefault(
                    name, {"type": "untyped", "help": "", "samples": []}
                )
                if parts[1] == "TYPE":
                    kind = parts[3] if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                        raise ServiceError(
                            f"metrics line {lineno}: unknown TYPE {kind!r}"
                        )
                    family["type"] = kind
                else:
                    family["help"] = parts[3] if len(parts) > 3 else ""
            continue  # other comments are legal and ignored
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ServiceError(f"metrics line {lineno}: unparseable sample {line!r}")
        labels_raw = match.group("labels") or ""
        labels: dict[str, str] = {}
        if labels_raw.strip():
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(labels_raw):
                labels[pair.group(1)] = (
                    pair.group(2)
                    .replace("\\\\", "\x00")
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\x00", "\\")
                )
                consumed += len(pair.group(0))
            stripped = re.sub(r"[,\s]", "", labels_raw)
            matched = re.sub(
                r"[,\s]", "", "".join(p.group(0) for p in _LABEL_PAIR_RE.finditer(labels_raw))
            )
            if stripped != matched:
                raise ServiceError(
                    f"metrics line {lineno}: malformed label block {{{labels_raw}}}"
                )
        value_raw = match.group("value")
        try:
            value = float(value_raw)
        except ValueError:
            if value_raw == "+Inf":
                value = math.inf
            elif value_raw == "-Inf":
                value = -math.inf
            elif value_raw == "NaN":
                value = math.nan
            else:
                raise ServiceError(
                    f"metrics line {lineno}: bad sample value {value_raw!r}"
                ) from None
        family_of(match.group("name"))["samples"].append(
            (match.group("name"), labels, value)
        )
    # Structural validation: histograms must have consistent buckets.
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        by_labels: dict[tuple, dict[str, float]] = {}
        for sample_name, labels, value in family["samples"]:
            if sample_name == f"{name}_bucket":
                key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
                by_labels.setdefault(key, {})[labels.get("le", "")] = value
        for key, buckets in by_labels.items():
            if "+Inf" not in buckets:
                raise ServiceError(
                    f"histogram {name!r} series {dict(key)} is missing the +Inf bucket"
                )
            ordered = sorted(
                ((float(le), v) for le, v in buckets.items() if le != "+Inf")
            )
            running = -1.0
            for _, cumulative in ordered + [(math.inf, buckets["+Inf"])]:
                if cumulative < running:
                    raise ServiceError(
                        f"histogram {name!r} has non-cumulative bucket counts"
                    )
                running = cumulative
    return families
