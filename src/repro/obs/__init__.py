"""Observability substrate: tracing, metrics, structured request logs.

The telemetry layer every serving component reports through:

* :mod:`repro.obs.tracing` — request-scoped spans (trace id, nested stack,
  wall/CPU time, attributes) with an ambient, zero-cost-when-off entry
  point (:func:`~repro.obs.tracing.span`) used by the service façade, the
  batch executor, the shared-lattice profiler and both execution backends.
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  in a :class:`~repro.obs.metrics.MetricsRegistry`, rendered in Prometheus
  text format by the serving layer's ``GET /metrics`` endpoint.
* :mod:`repro.obs.logs` — one schema-pinned JSON line per request with a
  slow-query threshold (``repro-dp serve --log-json --slow-ms``).

See ``docs/observability.md`` for the span taxonomy, metric catalogue and
log schema.
"""

from repro.obs.logs import LOG_SCHEMA, RequestLogger, validate_log_line
from repro.obs.metrics import (
    DEFAULT_IO_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer, activate, current_span, span

__all__ = [
    "LOG_SCHEMA",
    "RequestLogger",
    "validate_log_line",
    "DEFAULT_IO_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "activate",
    "current_span",
    "span",
]
