"""The user-facing DP counting-query API.

:class:`PrivateCountingQuery` bundles a conjunctive query, a privacy
parameter, a choice of sensitivity engine and a choice of execution backend
into a single object whose ``release(database)`` method produces an ε-DP
noisy result size.  The examples and the CLI's ``count`` sub-command call it
directly; the serving layer (:mod:`repro.service`) wraps the same object per
request, supplying precomputed (cached) true counts and sensitivities via
``release(..., true_count=, sensitivity=)``.  The individual sensitivity
engines and the noise framework remain available for fine-grained control.

Supported calibration methods:

``"residual"`` (default)
    Residual sensitivity — the paper's `O(1)`-neighborhood-optimal mechanism
    (Theorem 1.1); works for arbitrary CQs with self-joins, inequality and
    comparison predicates, and projections.
``"elastic"``
    Elastic sensitivity (the FLEX baseline).
``"smooth-triangle"`` / ``"smooth-star"``
    Closed-form smooth sensitivity, valid only for the triangle / k-star
    pattern counting queries over a binary edge relation.
``"global"``
    The Laplace mechanism calibrated to the AGM-based global-sensitivity
    bound (relaxed DP).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.data.database import Database
from repro.engine.backend import get_backend
from repro.engine.evaluation import count_query
from repro.exceptions import PrivacyError
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.smooth_mechanism import SmoothRelease, SmoothSensitivityMechanism
from repro.query.cq import ConjunctiveQuery
from repro.sensitivity.base import SensitivityResult
from repro.sensitivity.elastic import ElasticSensitivity
from repro.sensitivity.residual import ResidualSensitivity
from repro.sensitivity.smooth_star import StarSmoothSensitivity
from repro.sensitivity.smooth_triangle import TriangleSmoothSensitivity

__all__ = ["PrivateCountingQuery", "PrivateRelease"]

Method = Literal[
    "residual", "elastic", "smooth-triangle", "smooth-star", "global"
]


@dataclass(frozen=True)
class PrivateRelease:
    """The public outcome of a private counting query.

    Attributes
    ----------
    noisy_count:
        The ε-DP estimate of ``|q(I)|`` — the only field safe to publish.
    method:
        The sensitivity engine used.
    epsilon:
        The privacy budget consumed.
    sensitivity:
        The sensitivity value the noise was calibrated to (data-dependent:
        treat with the same care as the noisy count when ``method`` is not
        itself DP-safe to reveal — the smooth-sensitivity framework makes the
        *mechanism* private, the intermediate value is diagnostic only).
    expected_error:
        The mechanism's expected ℓ2-error on this instance.
    true_count:
        The exact count; populated only when ``keep_true_count=True`` was
        requested (never publish it).
    backend:
        The execution backend that evaluated the count and sensitivity
        (``"python"`` or ``"numpy"``); purely diagnostic — backends are
        result-equivalent.
    """

    noisy_count: float
    method: str
    epsilon: float
    sensitivity: float
    expected_error: float
    true_count: float | None = None
    backend: str = "python"


class PrivateCountingQuery:
    """An ε-DP releaser for the result size of a conjunctive query.

    Parameters
    ----------
    query:
        The conjunctive query.
    epsilon:
        The privacy parameter ``ε``.
    method:
        The calibration method (see module docstring).
    rng:
        numpy Generator or seed controlling the noise (pass a fixed seed for
        reproducible experiments; production use should leave it ``None``).
    star_arity:
        Number of leaves for the ``"smooth-star"`` method (default 3).
    edge_relation:
        Relation name for the closed-form graph methods (default ``"Edge"``).
    strategy:
        Evaluation strategy forwarded to the residual-sensitivity engine.
    backend:
        Execution backend (``"python"``, ``"numpy"`` or ``None`` for the
        process default) used to evaluate the true count and, for the
        ``"residual"`` method, the boundary multiplicities.  Backends are
        result-equivalent: with the same seed the released noisy counts are
        bitwise identical whichever backend runs.
    parallelism:
        Worker-pool size for the residual-sensitivity component
        evaluations (``None``/``0``/``1``: serial, the default).  A pure
        throughput knob — results are identical.
    parallelism_mode:
        ``"thread"`` (the ``None`` default), ``"process"`` or ``"auto"`` —
        whether the residual-sensitivity component fan-out runs on threads
        or on the shared GIL-free process pool (see
        :func:`repro.engine.profile.evaluate_profile`).  Results are
        identical across modes.

    Examples
    --------
    >>> from repro.data import DatabaseSchema, Database
    >>> from repro.query import parse_query
    >>> schema = DatabaseSchema.from_arities({"R": 2, "S": 2})
    >>> db = Database.from_rows(schema, R=[(1, 2)], S=[(2, 3)])
    >>> pq = PrivateCountingQuery(parse_query("R(x, y), S(y, z)"), epsilon=1.0, rng=7)
    >>> release = pq.release(db)
    >>> isinstance(release.noisy_count, float)
    True
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        epsilon: float,
        *,
        method: Method = "residual",
        rng: np.random.Generator | int | None = None,
        star_arity: int = 3,
        edge_relation: str = "Edge",
        strategy: str = "auto",
        backend: str | None = None,
        parallelism: int | None = None,
        parallelism_mode: str | None = None,
    ):
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if method not in ("residual", "elastic", "smooth-triangle", "smooth-star", "global"):
            raise PrivacyError(f"unknown calibration method {method!r}")
        self._query = query
        self._epsilon = float(epsilon)
        self._method = method
        self._rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        self._star_arity = star_arity
        self._edge_relation = edge_relation
        self._strategy = strategy
        self._backend = get_backend(backend).name
        self._parallelism = parallelism
        self._parallelism_mode = parallelism_mode
        self._smooth = SmoothSensitivityMechanism(self._epsilon, rng=self._rng)

    @property
    def query(self) -> ConjunctiveQuery:
        """The query being released."""
        return self._query

    @property
    def epsilon(self) -> float:
        """The privacy parameter ``ε``."""
        return self._epsilon

    @property
    def method(self) -> str:
        """The calibration method."""
        return self._method

    @property
    def beta(self) -> float:
        """The smoothing parameter used by the smooth-sensitivity methods."""
        return self._smooth.beta

    @property
    def backend(self) -> str:
        """The resolved execution-backend name (``"python"`` or ``"numpy"``)."""
        return self._backend

    # ------------------------------------------------------------------ #
    # Sensitivity
    # ------------------------------------------------------------------ #
    def sensitivity(self, database: Database) -> SensitivityResult:
        """The sensitivity value the noise would be calibrated to on ``database``."""
        beta = self._smooth.beta
        if self._method == "residual":
            return ResidualSensitivity(
                self._query,
                beta=beta,
                strategy=self._strategy,
                backend=self._backend,
                parallelism=self._parallelism,
                parallelism_mode=self._parallelism_mode,
            ).compute(database)
        if self._method == "elastic":
            return ElasticSensitivity(self._query, beta=beta).compute(database)
        if self._method == "smooth-triangle":
            return TriangleSmoothSensitivity(
                beta=beta, relation=self._edge_relation
            ).compute(database)
        if self._method == "smooth-star":
            return StarSmoothSensitivity(
                self._star_arity, beta=beta, relation=self._edge_relation
            ).compute(database)
        # "global" — handled in release() through the Laplace mechanism, but a
        # SensitivityResult is still useful for inspection.
        from repro.sensitivity.global_sensitivity import GlobalSensitivityBound

        return GlobalSensitivityBound(self._query).compute(database)

    # ------------------------------------------------------------------ #
    # Release
    # ------------------------------------------------------------------ #
    def release(
        self,
        database: Database,
        *,
        keep_true_count: bool = False,
        true_count: int | None = None,
        sensitivity: SensitivityResult | None = None,
    ) -> PrivateRelease:
        """An ε-DP noisy count of the query on ``database``.

        Parameters
        ----------
        keep_true_count:
            If ``True``, include the exact count in the returned record (for
            experiment harnesses; never publish it).
        true_count:
            Supply the exact count if already known, to avoid re-evaluating
            the query.
        sensitivity:
            Supply a precomputed sensitivity (as returned by
            :meth:`sensitivity`) to skip recomputing it — the serving layer's
            cache relies on this.  The result must have been computed with
            this mechanism's method and ``β`` on this very database;
            a recorded ``beta`` mismatch raises :class:`PrivacyError`.
        """
        if true_count is None:
            true_count = count_query(self._query, database, backend=self._backend)
        if sensitivity is None:
            sensitivity = self.sensitivity(database)

        if self._method == "global":
            gs_value = float(sensitivity.value)
            # A non-finite bound (strict DP) is passed as None so noise_scale
            # raises its descriptive "unbounded under strict DP" error.
            laplace = LaplaceMechanism(
                self._query,
                self._epsilon,
                global_sensitivity=gs_value if math.isfinite(gs_value) else None,
                rng=self._rng,
            )
            noisy = laplace.release(database, true_count=true_count)
            return PrivateRelease(
                noisy_count=noisy,
                method=self._method,
                epsilon=self._epsilon,
                sensitivity=gs_value,
                expected_error=laplace.expected_error(database),
                true_count=float(true_count) if keep_true_count else None,
                backend=self._backend,
            )

        release: SmoothRelease = self._smooth.release(true_count, sensitivity)
        return PrivateRelease(
            noisy_count=release.noisy_count,
            method=self._method,
            epsilon=self._epsilon,
            sensitivity=release.sensitivity,
            expected_error=release.expected_error,
            true_count=float(true_count) if keep_true_count else None,
            backend=self._backend,
        )
