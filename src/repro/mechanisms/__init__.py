"""Differentially private release mechanisms.

The mechanisms in this subpackage turn a sensitivity measure into an ε-DP
release of a query's result size:

* :mod:`repro.mechanisms.noise` — Laplace and general-Cauchy noise samplers;
* :mod:`repro.mechanisms.laplace` — the classic global-sensitivity Laplace
  mechanism (relaxed DP);
* :mod:`repro.mechanisms.smooth_mechanism` — the smooth-sensitivity noise
  framework of Nissim et al. used by the paper (β = ε/10, general Cauchy
  noise, error ``10·S(I)/ε``);
* :mod:`repro.mechanisms.mechanism` — :class:`PrivateCountingQuery`, the
  user-facing front end that picks a sensitivity engine (residual, elastic,
  smooth closed forms or global) and releases a noisy count;
* :mod:`repro.mechanisms.accountant` — a simple sequential-composition
  privacy budget accountant.
"""

from repro.mechanisms.accountant import PrivacyAccountant
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.mechanism import PrivateCountingQuery, PrivateRelease
from repro.mechanisms.noise import GeneralCauchyNoise, LaplaceNoise
from repro.mechanisms.smooth_mechanism import SmoothSensitivityMechanism

__all__ = [
    "GeneralCauchyNoise",
    "LaplaceMechanism",
    "LaplaceNoise",
    "PrivacyAccountant",
    "PrivateCountingQuery",
    "PrivateRelease",
    "SmoothSensitivityMechanism",
]
