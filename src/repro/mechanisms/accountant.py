"""A simple sequential-composition privacy accountant.

The paper notes (Section 8) that answering ``k`` queries costs an ``O(k)``
factor under standard sequential composition.  The accountant implemented
here tracks exactly that: every release charges its ``ε`` against a global
budget and the accountant refuses further releases once the budget is
exhausted.  It is intentionally conservative (pure ε-DP sequential
composition, no advanced/Rényi accounting), matching the mechanisms in this
library, which are all pure ε-DP.

The accountant is thread-safe: :meth:`PrivacyAccountant.charge` performs its
affordability check and the ledger append atomically under an internal lock,
so concurrent releases (e.g. from the batch executor of
:mod:`repro.service`) can never jointly overspend the budget.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import PrivacyError

__all__ = ["PrivacyAccountant", "BudgetCharge"]


@dataclass(frozen=True)
class BudgetCharge:
    """A single charge against the budget (for auditing)."""

    epsilon: float
    label: str


@dataclass
class PrivacyAccountant:
    """Tracks cumulative ε under sequential composition.

    Parameters
    ----------
    total_budget:
        The overall ε budget available.

    Examples
    --------
    >>> accountant = PrivacyAccountant(total_budget=2.0)
    >>> accountant.charge(0.5, label="q1")
    >>> accountant.remaining
    1.5
    >>> accountant.can_afford(1.6)
    False
    >>> accountant.reset()
    >>> accountant.remaining
    2.0
    """

    total_budget: float
    charges: list[BudgetCharge] = field(default_factory=list)

    def __post_init__(self) -> None:
        # NaN slips through a bare "<= 0" comparison and would silently deny
        # every later charge; reject non-finite budgets at construction.
        if not math.isfinite(self.total_budget) or self.total_budget <= 0:
            raise PrivacyError(
                f"the total budget must be positive and finite, got {self.total_budget}"
            )
        # Not a dataclass field: the lock takes no part in equality/repr and
        # must never be shared between two accountants.
        self._lock = threading.RLock()

    @property
    def spent(self) -> float:
        """Total ε consumed so far."""
        with self._lock:
            return sum(charge.epsilon for charge in self.charges)

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self.total_budget - self.spent

    def can_afford(self, epsilon: float) -> bool:
        """Whether a charge of ``epsilon`` fits in the remaining budget."""
        if not math.isfinite(epsilon) or epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive and finite, got {epsilon}")
        return epsilon <= self.remaining + 1e-12

    def charge(self, epsilon: float, label: str = "") -> BudgetCharge:
        """Record a charge of ``epsilon``; raises if the budget is exceeded.

        Check and append happen atomically, so concurrent callers cannot
        jointly exceed the budget.  The returned record is the handle
        :meth:`refund` takes back.
        """
        with self._lock:
            if not self.can_afford(epsilon):
                raise PrivacyError(
                    f"privacy budget exhausted: requested {epsilon}, remaining {self.remaining}"
                )
            record = BudgetCharge(epsilon=epsilon, label=label)
            self.charges.append(record)
            return record

    def refund(self, record: BudgetCharge) -> None:
        """Take back a specific charge (by identity), restoring its ε.

        Only the transactional charge pipeline of the serving layer calls
        this, to roll back a reservation whose release failed before any
        noisy value was produced.  Refunding a record that is not in the
        ledger raises :class:`PrivacyError`.
        """
        with self._lock:
            for idx in range(len(self.charges) - 1, -1, -1):
                if self.charges[idx] is record:
                    del self.charges[idx]
                    return
        raise PrivacyError(f"cannot refund a charge that is not in the ledger: {record}")

    def remove_charge(self, epsilon: float, label: str = "") -> bool:
        """Remove the most recent charge matching ``(epsilon, label)`` by value.

        The cross-process absorption path uses this to mirror a *rollback*
        journaled by a sibling worker: the local ledger holds an equal-value
        copy of the remote charge (installed via :meth:`restore_charge`), not
        the remote object, so identity-based :meth:`refund` cannot find it.
        Returns whether a matching charge was found.
        """
        with self._lock:
            for idx in range(len(self.charges) - 1, -1, -1):
                charge = self.charges[idx]
                if charge.epsilon == epsilon and charge.label == label:
                    del self.charges[idx]
                    return True
        return False

    def restore_charge(self, epsilon: float, label: str = "") -> None:
        """Re-apply a historically granted charge during journal replay.

        Unlike :meth:`charge` this skips the affordability check: the charge
        was granted in a previous process lifetime and must be reflected in
        the recovered ledger even if the accountant was reconfigured with a
        smaller budget (in which case the ledger simply reads as overspent
        and denies everything further — the conservative direction).
        """
        if not math.isfinite(epsilon) or epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive and finite, got {epsilon}")
        with self._lock:
            self.charges.append(BudgetCharge(epsilon=epsilon, label=label))

    def reset(self) -> None:
        """Forget all charges, restoring the full budget.

        Only meaningful when the data the budget protected is discarded or
        rotated (e.g. a serving session is torn down and its database
        deregistered); resetting while continuing to answer queries about the
        same data voids the privacy guarantee.
        """
        with self._lock:
            self.charges.clear()

    def run(self, epsilon: float, release: Callable[[], object], label: str = "") -> object:
        """Charge ``epsilon`` and, only if affordable, execute ``release()``.

        The charge is recorded *before* running the release so that a failure
        inside the release function still counts against the budget (the data
        may already have been touched).
        """
        self.charge(epsilon, label=label)
        return release()
