"""Noise distributions for sensitivity-based DP mechanisms.

Two samplers are provided:

* :class:`LaplaceNoise` — the textbook Laplace distribution, used with the
  global sensitivity (``scale = GS/ε``);
* :class:`GeneralCauchyNoise` — the polynomially-tailed distribution with
  density ``h(z) ∝ 1/(1 + |z|^γ)`` used by the smooth-sensitivity framework.
  The paper (and Nissim et al.) use ``γ = 4``, for which the distribution has
  **unit variance**: ``∫ z²·(√2/π)/(1+z⁴) dz = 1``.  Adding
  ``(S(I)/β)·Z`` with ``Z`` from this distribution therefore yields an
  unbiased release with expected ℓ2-error exactly ``S(I)/β = 10·S(I)/ε``.

Sampling from the general Cauchy distribution uses rejection sampling with a
standard Cauchy envelope, which has acceptance probability about 0.58 for
``γ = 4`` — plenty fast for the per-query use here.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import PrivacyError

__all__ = ["LaplaceNoise", "GeneralCauchyNoise"]


def _as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


class LaplaceNoise:
    """Zero-mean Laplace noise with a given scale ``b`` (variance ``2b²``)."""

    def __init__(self, scale: float, rng: np.random.Generator | int | None = None):
        if not math.isfinite(scale) or scale < 0:
            raise PrivacyError(f"Laplace scale must be finite and non-negative, got {scale}")
        self._scale = float(scale)
        self._rng = _as_generator(rng)

    @property
    def scale(self) -> float:
        """The scale parameter ``b``."""
        return self._scale

    @property
    def standard_deviation(self) -> float:
        """``sqrt(2)·b`` — the standard deviation of the distribution."""
        return math.sqrt(2.0) * self._scale

    def sample(self, size: int | None = None):
        """Draw one sample (``size=None``) or a numpy array of samples."""
        if self._scale == 0:
            return 0.0 if size is None else np.zeros(size)
        samples = self._rng.laplace(loc=0.0, scale=self._scale, size=size)
        return float(samples) if size is None else samples


class GeneralCauchyNoise:
    """Zero-mean noise with density ``h(z) = c_γ / (1 + |z/scale|^γ)``.

    Parameters
    ----------
    scale:
        The dispersion parameter; the release mechanism sets it to
        ``S(I)/β``.
    gamma:
        The tail exponent (must be > 3 for finite variance); the paper uses
        4.  With ``γ = 4`` the *standard* (scale 1) distribution has variance
        exactly 1, so the expected ℓ2-error of the mechanism equals ``scale``.
    rng:
        A numpy Generator or a seed.
    """

    def __init__(
        self,
        scale: float,
        gamma: float = 4.0,
        rng: np.random.Generator | int | None = None,
    ):
        if not math.isfinite(scale) or scale < 0:
            raise PrivacyError(f"noise scale must be finite and non-negative, got {scale}")
        if gamma <= 3:
            raise PrivacyError(
                f"gamma must exceed 3 for the noise to have finite variance, got {gamma}"
            )
        self._scale = float(scale)
        self._gamma = float(gamma)
        self._rng = _as_generator(rng)

    @property
    def scale(self) -> float:
        """The dispersion parameter."""
        return self._scale

    @property
    def gamma(self) -> float:
        """The tail exponent ``γ``."""
        return self._gamma

    @property
    def standard_deviation(self) -> float:
        """The standard deviation of the scaled distribution.

        For ``γ = 4`` the unit-scale variance is exactly 1; for other ``γ`` it
        is ``∫z²h(z)dz`` computed from the Beta-function expressions
        ``Var = tan(3π/γ)·... `` — we evaluate it numerically once.
        """
        return self._scale * math.sqrt(self._unit_variance())

    def _unit_variance(self) -> float:
        if self._gamma == 4.0:
            return 1.0
        # ∫ z^2/(1+|z|^γ) dz / ∫ 1/(1+|z|^γ) dz, both over the real line,
        # expressible through the Beta function: ∫_0^∞ z^{a-1}/(1+z^γ) dz =
        # (π/γ)/sin(aπ/γ).
        numerator = (math.pi / self._gamma) / math.sin(3.0 * math.pi / self._gamma)
        denominator = (math.pi / self._gamma) / math.sin(math.pi / self._gamma)
        return numerator / denominator

    def _sample_unit(self, count: int) -> np.ndarray:
        """Rejection sampling of the unit-scale distribution from a Cauchy envelope."""
        out = np.empty(0)
        # Acceptance probability is bounded below by ~1/2 for γ >= 4, so a few
        # rounds of oversampling suffice.
        while out.size < count:
            need = count - out.size
            batch = max(16, int(need * 2.5))
            candidates = self._rng.standard_cauchy(batch)
            # Target density ∝ 1/(1+|z|^γ); envelope density ∝ 1/(1+z²).
            # Accept with probability proportional to (1+z²)/(1+|z|^γ), scaled
            # by its maximum so the ratio is at most 1.
            ratio = (1.0 + candidates**2) / (1.0 + np.abs(candidates) ** self._gamma)
            ratio_max = self._envelope_ratio_max()
            accept = self._rng.random(batch) < ratio / ratio_max
            out = np.concatenate([out, candidates[accept]])
        return out[:count]

    def _envelope_ratio_max(self) -> float:
        """``max_z (1+z²)/(1+|z|^γ)`` — computed on a grid (exact for γ=4)."""
        if self._gamma == 4.0:
            # Maximum at z² = sqrt(2) - 1.
            z2 = math.sqrt(2.0) - 1.0
            return (1.0 + z2) / (1.0 + z2**2)
        grid = np.linspace(0.0, 10.0, 10_001)
        values = (1.0 + grid**2) / (1.0 + grid**self._gamma)
        return float(values.max()) * 1.01

    def sample(self, size: int | None = None):
        """Draw one sample (``size=None``) or a numpy array of samples."""
        count = 1 if size is None else int(size)
        samples = self._scale * self._sample_unit(count)
        return float(samples[0]) if size is None else samples
