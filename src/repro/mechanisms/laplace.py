"""The global-sensitivity Laplace mechanism.

The classic mechanism of Dwork et al.: release ``|q(I)| + Lap(GS/ε)``.  For
conjunctive queries it is only applicable under *relaxed* DP (the global
sensitivity is infinite under strict DP), and even then the noise scale can
be polynomially larger than instance-specific measures — which is exactly the
gap the paper's residual-sensitivity mechanism closes.  It is included as a
baseline and for the GS-based experiments (Examples 1–3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.database import Database
from repro.engine.evaluation import count_query
from repro.exceptions import PrivacyError
from repro.mechanisms.noise import LaplaceNoise
from repro.query.cq import ConjunctiveQuery
from repro.sensitivity.global_sensitivity import GlobalSensitivityBound

__all__ = ["LaplaceMechanism"]


class LaplaceMechanism:
    """Release ``|q(I)|`` with Laplace noise calibrated to a global sensitivity bound.

    Parameters
    ----------
    query:
        The counting query.
    epsilon:
        The privacy parameter ``ε``.
    global_sensitivity:
        Optional explicit global-sensitivity value.  If omitted, the
        AGM-based relaxed-DP bound of
        :class:`~repro.sensitivity.global_sensitivity.GlobalSensitivityBound`
        is computed on the instance at release time.
    rng:
        numpy Generator or seed for the noise.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        epsilon: float,
        *,
        global_sensitivity: float | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if global_sensitivity is not None and (
            global_sensitivity < 0 or not math.isfinite(global_sensitivity)
        ):
            raise PrivacyError(
                f"global sensitivity must be finite and non-negative, got {global_sensitivity}"
            )
        self._query = query
        self._epsilon = float(epsilon)
        self._gs = global_sensitivity
        # Materialise the generator once so that successive releases draw
        # fresh (independent) noise even when a seed was supplied.
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    @property
    def epsilon(self) -> float:
        """The privacy parameter ``ε``."""
        return self._epsilon

    def noise_scale(self, database: Database) -> float:
        """The Laplace scale ``GS/ε`` used on this instance."""
        gs = self._gs
        if gs is None:
            gs = GlobalSensitivityBound(self._query).compute(database).value
        if not math.isfinite(gs):
            raise PrivacyError(
                "the global sensitivity of this query is unbounded under strict DP; "
                "use the residual-sensitivity mechanism instead"
            )
        return gs / self._epsilon

    def expected_error(self, database: Database) -> float:
        """The expected ℓ2-error ``sqrt(2)·GS/ε``."""
        return math.sqrt(2.0) * self.noise_scale(database)

    def release(self, database: Database, *, true_count: int | None = None) -> float:
        """An ε-DP noisy count of ``q`` on ``database``.

        ``true_count`` can be supplied to avoid re-evaluating the query when
        the caller already has it (e.g. the experiment harnesses).
        """
        if true_count is None:
            true_count = count_query(self._query, database)
        noise = LaplaceNoise(self.noise_scale(database), rng=self._rng)
        return float(true_count) + noise.sample()
