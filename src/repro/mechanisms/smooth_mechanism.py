"""The smooth-sensitivity noise framework (Nissim et al., as used by the paper).

Given any *smooth upper bound* ``Ŝ(·)`` of smooth sensitivity with smoothing
parameter ``β = ε/10``, releasing

    M(I) = |q(I)| + (Ŝ(I)/β) · Z,     Z ~ h(z) ∝ 1/(1+z⁴)

is ε-differentially private, unbiased, and has expected ℓ2-error
``Ŝ(I)/β = 10·Ŝ(I)/ε`` (the general Cauchy distribution with exponent 4 has
unit variance).  Residual sensitivity, elastic sensitivity and the
closed-form smooth sensitivities all plug into this one release rule; they
differ only in the value of ``Ŝ(I)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import PrivacyError
from repro.mechanisms.noise import GeneralCauchyNoise
from repro.sensitivity.base import SensitivityResult

__all__ = ["SmoothSensitivityMechanism", "SmoothRelease"]

#: β = ε / BETA_FRACTION, following the paper's (and NRS's) choice of 10 for
#: the exponent-4 general Cauchy distribution.
BETA_FRACTION = 10.0


@dataclass(frozen=True)
class SmoothRelease:
    """The outcome of one smooth-sensitivity release.

    Attributes
    ----------
    noisy_count:
        The DP release ``|q(I)| + (Ŝ(I)/β)·Z``.
    true_count:
        The exact count (available to the caller, *not* DP — do not publish).
    sensitivity:
        The smooth upper bound ``Ŝ(I)`` used.
    noise_scale:
        ``Ŝ(I)/β``.
    expected_error:
        The expected ℓ2-error of the mechanism on this instance
        (``10·Ŝ(I)/ε``, equal to ``noise_scale`` for exponent 4).
    epsilon / beta:
        The privacy and smoothing parameters.
    """

    noisy_count: float
    true_count: float
    sensitivity: float
    noise_scale: float
    expected_error: float
    epsilon: float
    beta: float


class SmoothSensitivityMechanism:
    """Release a count with noise calibrated to a smooth sensitivity upper bound.

    Parameters
    ----------
    epsilon:
        The privacy parameter ``ε``.
    gamma:
        Tail exponent of the general Cauchy noise (default 4, the paper's
        choice; must exceed 3 for finite variance).
    beta:
        Optional explicit smoothing parameter.  Defaults to ``ε/10``;
        supplying a different value is allowed but the caller is then
        responsible for the ``(β, γ, ε)`` compatibility condition of the
        smooth-sensitivity framework.
    rng:
        numpy Generator or seed for the noise.
    """

    def __init__(
        self,
        epsilon: float,
        *,
        gamma: float = 4.0,
        beta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        self._epsilon = float(epsilon)
        self._gamma = float(gamma)
        self._beta = float(beta) if beta is not None else epsilon / BETA_FRACTION
        if self._beta <= 0:
            raise PrivacyError(f"beta must be positive, got {self._beta}")
        # Materialise the generator once so that successive releases draw
        # fresh (independent) noise even when a seed was supplied.
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    @property
    def epsilon(self) -> float:
        """The privacy parameter ``ε``."""
        return self._epsilon

    @property
    def beta(self) -> float:
        """The smoothing parameter ``β`` the sensitivity must be computed with."""
        return self._beta

    def noise_scale(self, sensitivity: float) -> float:
        """``Ŝ(I)/β`` — the dispersion of the added noise."""
        if sensitivity < 0 or not math.isfinite(sensitivity):
            raise PrivacyError(
                f"sensitivity must be finite and non-negative, got {sensitivity}"
            )
        return sensitivity / self._beta

    def expected_error(self, sensitivity: float) -> float:
        """The expected ℓ2-error of the release for a given ``Ŝ(I)``."""
        scale = self.noise_scale(sensitivity)
        return GeneralCauchyNoise(scale, gamma=self._gamma, rng=0).standard_deviation

    def release(
        self,
        true_count: float,
        sensitivity: SensitivityResult | float,
    ) -> SmoothRelease:
        """Release ``true_count`` with noise calibrated to ``sensitivity``.

        ``sensitivity`` may be a plain number or a
        :class:`~repro.sensitivity.base.SensitivityResult`; in the latter
        case its ``beta`` (when recorded) must match the mechanism's ``β`` —
        a mismatch voids the privacy guarantee and raises
        :class:`PrivacyError`.
        """
        if isinstance(sensitivity, SensitivityResult):
            if sensitivity.beta is not None and not math.isclose(
                sensitivity.beta, self._beta, rel_tol=1e-9
            ):
                raise PrivacyError(
                    f"sensitivity was computed with beta={sensitivity.beta}, but the "
                    f"mechanism uses beta={self._beta}; recompute the sensitivity with "
                    "the mechanism's beta"
                )
            value = float(sensitivity.value)
        else:
            value = float(sensitivity)
        scale = self.noise_scale(value)
        noise = GeneralCauchyNoise(scale, gamma=self._gamma, rng=self._rng)
        noisy = float(true_count) + noise.sample()
        return SmoothRelease(
            noisy_count=noisy,
            true_count=float(true_count),
            sensitivity=value,
            noise_scale=scale,
            expected_error=noise.standard_deviation,
            epsilon=self._epsilon,
            beta=self._beta,
        )
