"""Closed-form smooth sensitivity for triangle counting.

Triangle counting is one of the two query families for which an exact
polynomial-time smooth sensitivity algorithm is known (Nissim, Raskhodnikova
and Smith), and it is the exact-SS baseline the paper's experimental
evaluation (Table 1) compares residual sensitivity (Sections 3, 5, 6)
against on ``q△``; since ``SS_β`` is the tightest β-smooth upper bound
(Section 2.3), the gap RS/SS quantifies the cost of polynomial-time
computability.

The computation follows the NRS analysis.  Work on the symmetric graph
underlying the ``Edge`` relation; for a vertex pair ``(u, v)`` let

* ``a_uv`` — the number of common neighbours (each is a "completed wedge":
  flipping edge ``(u, v)`` changes the triangle count by ``a_uv``), and
* ``b_uv`` — the number of vertices adjacent to exactly one of ``u, v``
  ("half-built" wedges: one extra edge turns each into a common neighbour).

Then the local sensitivity of the *triangle count* at distance ``s`` is

    LS^(s) = max_{u,v} min( a_uv + floor( (s + min(s, b_uv)) / 2 ), n - 2 )

and ``SS_β = max_s e^{-βs}·LS^(s)``.  The conjunctive query of the paper's
experiments counts *ordered, oriented* triangles over the symmetric edge
relation, which is ``scale = 3`` times more sensitive to a single directed
tuple change (the changed tuple can play each of the three atom roles); the
class therefore reports ``scale · SS_β`` so that the value is directly
comparable with the residual and elastic sensitivities of the same CQ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.database import Database
from repro.exceptions import SensitivityError
from repro.sensitivity.base import (
    SensitivityResult,
    beta_from_epsilon,
    validate_beta,
)

__all__ = ["TriangleSmoothSensitivity"]


@dataclass(frozen=True)
class _PairStatistics:
    """Common-neighbour (``a``) and half-built (``b``) counts for candidate pairs."""

    a_values: np.ndarray
    b_values: np.ndarray
    num_vertices: int


class TriangleSmoothSensitivity:
    """Smooth sensitivity of the triangle-counting CQ over an ``Edge`` relation.

    Parameters
    ----------
    beta / epsilon:
        Exactly one must be provided (``epsilon`` implies ``β = ε/10``).
    relation:
        Name of the binary edge relation (default ``"Edge"``).
    cq_scale:
        Multiplier translating the undirected triangle count's sensitivity to
        the CQ's result-size sensitivity (default 3; see the module
        docstring).  Set to 1 to obtain the plain NRS value.
    s_max:
        Truncation point of the maximisation over ``s``.  ``LS^(s)`` grows at
        most linearly in ``s`` while the discount decays exponentially, so
        the default ``ceil(20/β)`` is far past the maximiser.
    """

    def __init__(
        self,
        *,
        beta: float | None = None,
        epsilon: float | None = None,
        relation: str = "Edge",
        cq_scale: int = 3,
        s_max: int | None = None,
    ):
        if (beta is None) == (epsilon is None):
            raise SensitivityError("provide exactly one of beta= or epsilon=")
        self._beta = validate_beta(beta if beta is not None else beta_from_epsilon(epsilon))
        self._relation = relation
        if cq_scale < 1:
            raise SensitivityError(f"cq_scale must be at least 1, got {cq_scale}")
        self._cq_scale = cq_scale
        self._s_max = s_max

    @property
    def beta(self) -> float:
        """The smoothing parameter ``β``."""
        return self._beta

    # ------------------------------------------------------------------ #
    # Graph statistics
    # ------------------------------------------------------------------ #
    def _pair_statistics(self, database: Database) -> _PairStatistics:
        relation = database.relation(self._relation)
        if relation.arity != 2:
            raise SensitivityError(
                f"triangle smooth sensitivity needs a binary relation, "
                f"{self._relation!r} has arity {relation.arity}"
            )
        adjacency: dict[object, set] = {}
        for src, dst in relation:
            if src == dst:
                continue
            adjacency.setdefault(src, set()).add(dst)
            adjacency.setdefault(dst, set()).add(src)
        vertices = list(adjacency)
        num_vertices = len(vertices)

        # Candidate pairs: every pair with at least one common neighbour (found
        # by iterating two-hop paths) plus the pair of the two highest-degree
        # vertices (which dominates the half-built-wedge term for b).
        a_counts: dict[tuple, int] = {}
        for middle, neighbours in adjacency.items():
            neighbour_list = sorted(neighbours, key=repr)
            for i, u in enumerate(neighbour_list):
                for v in neighbour_list[i + 1 :]:
                    a_counts[(u, v)] = a_counts.get((u, v), 0) + 1

        by_degree = sorted(vertices, key=lambda v: len(adjacency[v]), reverse=True)
        candidate_pairs = set(a_counts)
        for u in by_degree[:3]:
            for v in by_degree[:3]:
                if repr(u) < repr(v):
                    candidate_pairs.add((u, v))

        a_values = []
        b_values = []
        for u, v in candidate_pairs:
            neighbours_u = adjacency.get(u, set())
            neighbours_v = adjacency.get(v, set())
            common = len(neighbours_u & neighbours_v)
            either = len((neighbours_u ^ neighbours_v) - {u, v})
            a_values.append(common)
            b_values.append(either)
        if not a_values:
            a_values = [0]
            b_values = [0]
        return _PairStatistics(
            a_values=np.asarray(a_values, dtype=np.int64),
            b_values=np.asarray(b_values, dtype=np.int64),
            num_vertices=max(num_vertices, 2),
        )

    # ------------------------------------------------------------------ #
    # LS^(s) and the smoothed value
    # ------------------------------------------------------------------ #
    def ls_at_distance(self, database: Database, s: int) -> int:
        """``scale · LS^(s)`` of the triangle count (NRS closed form)."""
        if s < 0:
            raise SensitivityError(f"s must be non-negative, got {s}")
        stats = self._pair_statistics(database)
        return self._ls_from_stats(stats, s)

    def _ls_from_stats(self, stats: _PairStatistics, s: int) -> int:
        capped = np.minimum(
            stats.a_values + (s + np.minimum(s, stats.b_values)) // 2,
            stats.num_vertices - 2,
        )
        return int(self._cq_scale * int(capped.max()))

    def compute(self, database: Database) -> SensitivityResult:
        """``scale · SS_β`` of the triangle-counting query."""
        stats = self._pair_statistics(database)
        s_max = self._s_max
        if s_max is None:
            s_max = int(math.ceil(20.0 / self._beta))
        best = 0.0
        best_s = 0
        for s in range(s_max + 1):
            raw = self._ls_from_stats(stats, s)
            smoothed = math.exp(-self._beta * s) * raw
            if smoothed > best:
                best = smoothed
                best_s = s
            # Once the cap (n - 2) has been reached the series can only decay.
            if raw >= self._cq_scale * (stats.num_vertices - 2):
                break
        return SensitivityResult(
            measure="SS",
            value=best,
            beta=self._beta,
            details={"s_star": best_s, "s_max": s_max, "cq_scale": self._cq_scale},
        )

    def value(self, database: Database) -> float:
        """Shorthand for ``self.compute(database).value``."""
        return self.compute(database).value
