"""Common types and helpers for sensitivity measures.

Every sensitivity engine in this package produces a :class:`SensitivityResult`
that records the value, the smoothing parameter used, and measure-specific
diagnostics (per-``k`` series, witnessing residual multiplicities, dropped
predicates, ...).  The DP mechanisms in :mod:`repro.mechanisms` consume only
the ``value`` and ``beta`` fields; the diagnostics feed the experiment
harnesses and the tests.

The shared vocabulary comes from the paper's smooth-sensitivity framework
(Section 2.3, Equations 6–8): a *β-smooth upper bound* is any series
``L̂S^(k)`` with ``L̂S^(k)(I) >= LS^(k)(I)`` and
``L̂S^(k)(I) <= L̂S^(k+1)(I')`` for neighboring instances; calibrating noise
to ``max_k e^{-βk}·L̂S^(k)(I)`` preserves ε-DP.  Residual sensitivity
(Sections 3, 5, 6) and elastic sensitivity (Section 4.4) are both such
bounds; ``β = ε/10`` (:func:`beta_from_epsilon`) is the paper's choice for
the exponent-4 Cauchy noise distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import SensitivityError

__all__ = [
    "SensitivityResult",
    "beta_from_epsilon",
    "validate_beta",
    "DEFAULT_BETA_FRACTION",
]

#: The paper (following Nissim et al.) sets ``β = ε / 10`` when using the
#: general Cauchy distribution with exponent 4; see Section 2.3.
DEFAULT_BETA_FRACTION = 10.0


def beta_from_epsilon(epsilon: float, fraction: float = DEFAULT_BETA_FRACTION) -> float:
    """The smoothing parameter ``β = ε / fraction`` (default ``ε / 10``).

    Raises
    ------
    SensitivityError
        If ``epsilon`` or ``fraction`` is not strictly positive.
    """
    if epsilon <= 0:
        raise SensitivityError(f"epsilon must be positive, got {epsilon}")
    if fraction <= 0:
        raise SensitivityError(f"fraction must be positive, got {fraction}")
    return epsilon / fraction


def validate_beta(beta: float) -> float:
    """Validate the smoothing parameter ``β`` (must be strictly positive and finite)."""
    if not isinstance(beta, (int, float)) or isinstance(beta, bool):
        raise SensitivityError(f"beta must be a number, got {beta!r}")
    if not math.isfinite(beta) or beta <= 0:
        raise SensitivityError(f"beta must be positive and finite, got {beta}")
    return float(beta)


@dataclass(frozen=True)
class SensitivityResult:
    """The outcome of a sensitivity computation.

    Attributes
    ----------
    measure:
        Short identifier of the measure (``"RS"``, ``"SS"``, ``"ES"``,
        ``"GS"``, ``"LS"``, ...).
    value:
        The sensitivity value.  Always non-negative and finite unless the
        measure is genuinely unbounded (global sensitivity under strict DP),
        in which case it is ``math.inf``.
    beta:
        The smoothing parameter used (``None`` for unsmoothed measures such
        as ``LS`` and ``GS``).
    details:
        Measure-specific diagnostics (per-``k`` series, witnesses, timings,
        dropped predicates, ...).  Keys are strings; values are plain Python
        objects so results can be serialised easily.
    """

    measure: str
    value: float
    beta: float | None = None
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.value < 0:
            raise SensitivityError(
                f"sensitivity values must be non-negative, got {self.value} for {self.measure}"
            )

    def detail(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into :attr:`details`."""
        return self.details.get(key, default)

    def __float__(self) -> float:
        return float(self.value)
