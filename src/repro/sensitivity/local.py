"""Local sensitivity ``LS(I)`` and its distance-``k`` variant ``LS^(k)(I)``.

The local sensitivity (Equation 3 of the paper) is the largest change of
``|q(I)|`` over all instances at tuple-DP distance one.  Releasing noise
calibrated to ``LS`` directly violates DP, but ``LS`` and ``LS^(k)`` are the
yardsticks every other measure is compared against:

* smooth sensitivity is ``max_k e^{-βk}·LS^(k)(I)``;
* the neighborhood lower bound of Lemma 4.2 is ``LS^(r-1)(I)/(2√(1+e^ε))``;
* residual sensitivity upper-bounds ``LS^(k)`` through residual-query
  multiplicities.

This module provides three flavours:

1. :func:`local_sensitivity_exact` — exact brute force, enumerating all
   neighbors over finite attribute domains (reference implementation for
   tests; exponential in general).
2. :func:`local_sensitivity_at_distance` — exact ``LS^(k)`` by breadth-first
   search over the distance-``k`` ball (reference implementation; use only
   on tiny instances).
3. :func:`local_sensitivity_upper_bound` — the polynomial residual-query
   bounds: exact for self-join-free queries (Lemma 3.3) and an upper bound
   in the presence of self-joins (Theorem 3.5).
"""

from __future__ import annotations

from typing import Iterable

from repro.data.database import Database
from repro.engine.aggregates import boundary_multiplicity
from repro.engine.evaluation import count_query
from repro.exceptions import SensitivityError
from repro.query.cq import ConjunctiveQuery
from repro.sensitivity.base import SensitivityResult

__all__ = [
    "local_sensitivity_exact",
    "local_sensitivity_at_distance",
    "local_sensitivity_upper_bound",
]


def _require_private(query: ConjunctiveQuery, database: Database) -> None:
    if not query.private_blocks(database.schema):
        raise SensitivityError(
            "the query touches no private relation; its sensitivity is zero and "
            "no noise is needed"
        )


def local_sensitivity_exact(
    query: ConjunctiveQuery,
    database: Database,
    *,
    allow_insert: bool = True,
    allow_delete: bool = True,
    allow_substitute: bool = True,
) -> SensitivityResult:
    """Exact ``LS(I)`` by enumerating every neighbor of ``I``.

    Requires finite attribute domains on the private relations whenever
    insertions or substitutions are allowed (see
    :meth:`repro.data.database.Database.candidate_tuples`).  Intended for
    small test instances; complexity is linear in the number of neighbors,
    which itself is linear in the number of candidate tuples.
    """
    query.validate_against_schema(database.schema)
    _require_private(query, database)
    base_count = count_query(query, database, strategy="enumerate")
    worst = 0
    best_neighbor = None
    for neighbor in database.neighbors(
        allow_insert=allow_insert,
        allow_delete=allow_delete,
        allow_substitute=allow_substitute,
    ):
        neighbor_count = count_query(query, neighbor, strategy="enumerate")
        diff = abs(neighbor_count - base_count)
        if diff > worst:
            worst = diff
            best_neighbor = neighbor
    details = {"base_count": base_count}
    if best_neighbor is not None:
        details["witness_size"] = best_neighbor.size()
    return SensitivityResult(measure="LS", value=float(worst), beta=None, details=details)


def local_sensitivity_at_distance(
    query: ConjunctiveQuery,
    database: Database,
    k: int,
    *,
    allow_insert: bool = True,
    allow_delete: bool = True,
    allow_substitute: bool = True,
    max_instances: int = 200_000,
) -> SensitivityResult:
    """Exact ``LS^(k)(I) = max_{d(I, I') <= k} LS(I')`` by BFS over the ball.

    This is doubly exponential in ``k`` in the worst case and is provided as
    a *reference implementation* for validating smooth and residual
    sensitivity on tiny instances.  ``max_instances`` caps the number of
    distinct instances visited; exceeding it raises
    :class:`SensitivityError`.
    """
    if k < 0:
        raise SensitivityError(f"k must be non-negative, got {k}")
    query.validate_against_schema(database.schema)
    _require_private(query, database)

    def _fingerprint(db: Database) -> tuple:
        return tuple(
            (name, frozenset(db.relation(name))) for name in db.schema.relation_names
        )

    frontier = [database]
    visited = {_fingerprint(database)}
    all_instances = [database]
    for _ in range(k):
        next_frontier: list[Database] = []
        for instance in frontier:
            for neighbor in instance.neighbors(
                allow_insert=allow_insert,
                allow_delete=allow_delete,
                allow_substitute=allow_substitute,
            ):
                fp = _fingerprint(neighbor)
                if fp in visited:
                    continue
                visited.add(fp)
                if len(visited) > max_instances:
                    raise SensitivityError(
                        f"distance-{k} ball exceeds max_instances={max_instances}; "
                        "use a smaller instance or domain"
                    )
                next_frontier.append(neighbor)
                all_instances.append(neighbor)
        frontier = next_frontier

    worst = 0
    for instance in all_instances:
        ls = local_sensitivity_exact(
            query,
            instance,
            allow_insert=allow_insert,
            allow_delete=allow_delete,
            allow_substitute=allow_substitute,
        )
        worst = max(worst, int(ls.value))
    return SensitivityResult(
        measure=f"LS^({k})",
        value=float(worst),
        beta=None,
        details={"ball_size": len(all_instances), "k": k},
    )


def local_sensitivity_upper_bound(
    query: ConjunctiveQuery,
    database: Database,
    *,
    strategy: str = "auto",
) -> SensitivityResult:
    """Residual-query bound on ``LS(I)``.

    * Self-join-free queries: ``LS(I) = max_{i ∈ P_n} T_{[n]-{i}}(I)``
      (Lemma 3.3) — the returned value is exact.
    * Queries with self-joins: ``LS(I) <= max_{i ∈ P_m} Σ_{E ⊆ D_i, E ≠ ∅}
      T_{[n]-E}(I)`` (Theorem 3.5) — the returned value is an upper bound.

    The ``details`` record, per private block, the contributing residual
    multiplicities.
    """
    query.validate_against_schema(database.schema)
    _require_private(query, database)
    n = query.num_atoms
    all_atoms = frozenset(range(n))
    per_block: dict[str, int] = {}
    contributions: dict[str, list[tuple[tuple[int, ...], int]]] = {}
    for block in query.private_blocks(database.schema):
        total = 0
        terms: list[tuple[tuple[int, ...], int]] = []
        subsets: Iterable[frozenset[int]]
        if query.is_self_join_free:
            subsets = [frozenset({idx}) for idx in block.atom_indices]
        else:
            from repro.query.residual import all_subsets_of_block

            subsets = all_subsets_of_block(block.atom_indices)
        values = []
        for removed in subsets:
            kept = all_atoms - removed
            result = boundary_multiplicity(query, database, kept, strategy=strategy)
            terms.append((tuple(sorted(removed)), result.value))
            values.append(result.value)
        if query.is_self_join_free:
            total = max(values) if values else 0
        else:
            total = sum(values)
        per_block[block.relation] = total
        contributions[block.relation] = terms
    value = max(per_block.values()) if per_block else 0
    return SensitivityResult(
        measure="LS-upper" if not query.is_self_join_free else "LS",
        value=float(value),
        beta=None,
        details={
            "per_block": per_block,
            "contributions": contributions,
            "exact": query.is_self_join_free,
        },
    )
