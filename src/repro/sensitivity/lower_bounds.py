"""Neighborhood lower bounds and empirical optimality ratios (Section 4).

The paper's optimality notion compares the error of a mechanism at ``I``
against the best possible error of *any* ε-DP mechanism somewhere in the
``r``-neighborhood of ``I``.  Two lower bounds are implemented:

* **Lemma 4.2** — for any ε-DP mechanism ``M'`` and any ``r >= 1``,

      max_{d(I,I') <= r} Err(M', I') >= LS^(r-1)(I) / (2·sqrt(1 + e^ε)).

  :func:`neighborhood_lower_bound` applies this normalisation to any
  ``LS^(r-1)`` value (brute-force or closed-form).

* **Lemma 4.5** — for full CQs, ``LS^(n_P - 1)(I) >= max_{E ⊆ P_n, E ≠ ∅}
  T_{[n]-E}(I)``.  Combined with Lemma 4.2 this yields a *polynomially
  computable* lower bound at radius ``r = n_P``, which is what the
  optimality-ratio experiment uses:

      max_{d(I,I') <= n_P} Err(M', I') >=
          max_{E ⊆ P_n, E ≠ ∅} T_{[n]-E}(I) / (2·sqrt(1 + e^ε)).

Dividing the RS mechanism's error ``10·RS(I)/ε`` by this bound gives an
empirical (upper estimate of the) neighborhood-optimality ratio for each
instance, complementing the worst-case constant of Lemma 4.8.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.data.database import Database
from repro.engine.aggregates import boundary_multiplicity
from repro.exceptions import SensitivityError
from repro.query.cq import ConjunctiveQuery
from repro.sensitivity.base import SensitivityResult

__all__ = [
    "neighborhood_lower_bound",
    "lemma_4_5_lower_bound",
    "optimality_ratio",
    "NeighborhoodLowerBound",
]


def neighborhood_lower_bound(ls_at_r_minus_1: float, epsilon: float) -> float:
    """Lemma 4.2: ``LS^(r-1)(I) / (2·sqrt(1 + e^ε))``.

    Parameters
    ----------
    ls_at_r_minus_1:
        Any valid value (or lower bound) of ``LS^(r-1)(I)``.
    epsilon:
        The privacy parameter of the mechanisms being compared against.
    """
    if epsilon <= 0:
        raise SensitivityError(f"epsilon must be positive, got {epsilon}")
    if ls_at_r_minus_1 < 0:
        raise SensitivityError(f"LS^(r-1) must be non-negative, got {ls_at_r_minus_1}")
    return ls_at_r_minus_1 / (2.0 * math.sqrt(1.0 + math.exp(epsilon)))


@dataclass(frozen=True)
class NeighborhoodLowerBound:
    """A neighborhood lower bound with its radius and witnessing residual.

    Attributes
    ----------
    radius:
        The neighborhood radius ``r`` the bound applies to.
    value:
        The lower bound on ``max_{d(I,I') <= r} Err(M', I')``.
    ls_lower_bound:
        The underlying lower bound on ``LS^(r-1)(I)``.
    witness_removed_atoms:
        The subset ``E`` attaining the maximum in Lemma 4.5.
    """

    radius: int
    value: float
    ls_lower_bound: float
    witness_removed_atoms: tuple[int, ...]


def lemma_4_5_lower_bound(
    query: ConjunctiveQuery,
    database: Database,
    epsilon: float,
    *,
    strategy: str = "auto",
) -> NeighborhoodLowerBound:
    """The radius-``n_P`` neighborhood lower bound from Lemmas 4.2 + 4.5.

    Only meaningful for **full** CQs (the paper's lower bound breaks for
    projections, Theorem 6.4); calling it on a non-full query raises
    :class:`SensitivityError`.
    """
    if not query.is_full:
        raise SensitivityError(
            "the Lemma 4.5 lower bound only applies to full CQs (Theorem 6.4 rules "
            "out comparable bounds for projections)"
        )
    query.validate_against_schema(database.schema)
    private_atoms = query.private_atom_indices(database.schema)
    if not private_atoms:
        raise SensitivityError("the query touches no private relation")
    n = query.num_atoms
    all_atoms = frozenset(range(n))

    best_value = 0
    best_removed: tuple[int, ...] = ()
    for size in range(1, len(private_atoms) + 1):
        for removed in itertools.combinations(sorted(private_atoms), size):
            kept = all_atoms - frozenset(removed)
            result = boundary_multiplicity(query, database, kept, strategy=strategy)
            if result.value > best_value:
                best_value = result.value
                best_removed = tuple(removed)
    radius = len(private_atoms)
    return NeighborhoodLowerBound(
        radius=radius,
        value=neighborhood_lower_bound(best_value, epsilon),
        ls_lower_bound=float(best_value),
        witness_removed_atoms=best_removed,
    )


def optimality_ratio(
    mechanism_error: float,
    lower_bound: NeighborhoodLowerBound | float,
) -> float:
    """The empirical optimality ratio ``Err(M, I) / lower bound``.

    A value of ``c`` certifies that the mechanism is within a factor ``c`` of
    the best achievable error in the corresponding neighborhood of ``I``
    (the paper's ``(r, c)``-neighborhood optimality, instantiated on this
    instance).  Returns ``inf`` when the lower bound is zero but the error is
    not, and ``1.0`` when both are zero.
    """
    bound_value = lower_bound.value if isinstance(lower_bound, NeighborhoodLowerBound) else lower_bound
    if bound_value < 0 or mechanism_error < 0:
        raise SensitivityError("errors and lower bounds must be non-negative")
    if bound_value == 0:
        return 1.0 if mechanism_error == 0 else math.inf
    return mechanism_error / bound_value


def mechanism_error_from_sensitivity(result: SensitivityResult, epsilon: float) -> float:
    """The expected ℓ2-error of the smooth-sensitivity mechanism using ``result``.

    The paper's calibration (Section 2.3) gives ``Err(M, I) = 10·S(I)/ε``
    when ``β = ε/10`` and the noise is the unit-variance general Cauchy
    distribution.
    """
    if epsilon <= 0:
        raise SensitivityError(f"epsilon must be positive, got {epsilon}")
    return 10.0 * result.value / epsilon
