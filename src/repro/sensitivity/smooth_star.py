"""Closed-form smooth sensitivity for k-star counting.

k-star counting (a centre vertex with ``k`` distinct out-neighbours) is the
second query family with a known polynomial smooth-sensitivity algorithm
(Karwa, Raskhodnikova, Smith and Yaroslavtsev); it is the exact-SS baseline
that the paper's experimental evaluation (Table 1) compares residual
sensitivity (Sections 3, 5, 6) against on ``q3∗``.  Because ``SS_β`` is the
tightest β-smooth upper bound (Section 2.3), the ratio RS/SS measures how
much the polynomial-time relaxation gives up.

The CQ of the experiments is ``Edge(x0, x1) ⋈ ... ⋈ Edge(x0, x_k)`` with all
leaves pairwise distinct, evaluated on the symmetric edge relation.  Its
result size is ``Σ_v d(v)·(d(v)-1)···(d(v)-k+1)`` (ordered distinct leaves,
``d`` = out-degree).  Changing one directed tuple ``(u, c)`` changes the
count by ``k·(d(u)-1)(d(u)-2)···(d(u)-k+1)``: the changed tuple can play any
of the ``k`` leaf roles, the remaining leaves are drawn from the other
out-neighbours of ``u``.  The distance-``s`` local sensitivity is therefore
maximised by piling ``s`` additional out-edges onto the highest-degree
vertex:

    LS^(s) = k · ff( min(d_max + s, n - 1) - 1, k - 1 )

where ``ff(d, t) = d·(d-1)···(d-t+1)`` is the falling factorial and ``n`` the
number of vertices (a vertex cannot have more than ``n - 1`` distinct
neighbours).  ``SS_β = max_s e^{-βs}·LS^(s)``.
"""

from __future__ import annotations

import math

from repro.data.database import Database
from repro.exceptions import SensitivityError
from repro.sensitivity.base import (
    SensitivityResult,
    beta_from_epsilon,
    validate_beta,
)

__all__ = ["StarSmoothSensitivity", "falling_factorial"]


def falling_factorial(base: int, length: int) -> int:
    """``base·(base-1)···(base-length+1)`` (1 when ``length == 0``, 0 when negative)."""
    if length < 0:
        raise SensitivityError(f"length must be non-negative, got {length}")
    result = 1
    for offset in range(length):
        factor = base - offset
        if factor <= 0:
            return 0
        result *= factor
    return result


class StarSmoothSensitivity:
    """Smooth sensitivity of the k-star counting CQ over an ``Edge`` relation.

    Parameters
    ----------
    k:
        Number of leaves of the star (default 3, the paper's ``q3∗``).
    beta / epsilon:
        Exactly one must be provided (``epsilon`` implies ``β = ε/10``).
    relation:
        Name of the binary edge relation (default ``"Edge"``).
    s_max:
        Truncation point of the maximisation over ``s`` (default
        ``ceil(20·k/β)``, far past the maximiser because the polynomial
        growth of ``LS^(s)`` is eventually dominated by the exponential
        discount).
    """

    def __init__(
        self,
        k: int = 3,
        *,
        beta: float | None = None,
        epsilon: float | None = None,
        relation: str = "Edge",
        s_max: int | None = None,
    ):
        if k < 1:
            raise SensitivityError(f"a star needs at least one leaf, got k={k}")
        if (beta is None) == (epsilon is None):
            raise SensitivityError("provide exactly one of beta= or epsilon=")
        self._k = k
        self._beta = validate_beta(beta if beta is not None else beta_from_epsilon(epsilon))
        self._relation = relation
        self._s_max = s_max

    @property
    def beta(self) -> float:
        """The smoothing parameter ``β``."""
        return self._beta

    @property
    def k(self) -> int:
        """The number of star leaves."""
        return self._k

    # ------------------------------------------------------------------ #
    # Degree statistics
    # ------------------------------------------------------------------ #
    def _degree_statistics(self, database: Database) -> tuple[int, int]:
        """(maximum out-degree, number of vertices) of the edge relation."""
        relation = database.relation(self._relation)
        if relation.arity != 2:
            raise SensitivityError(
                f"star smooth sensitivity needs a binary relation, "
                f"{self._relation!r} has arity {relation.arity}"
            )
        out_degree: dict[object, int] = {}
        vertices: set = set()
        for src, dst in relation:
            vertices.add(src)
            vertices.add(dst)
            if src == dst:
                continue
            out_degree[src] = out_degree.get(src, 0) + 1
        d_max = max(out_degree.values(), default=0)
        return d_max, max(len(vertices), 2)

    # ------------------------------------------------------------------ #
    # LS^(s) and the smoothed value
    # ------------------------------------------------------------------ #
    def ls_at_distance(self, database: Database, s: int) -> int:
        """``LS^(s)`` of the k-star counting CQ."""
        if s < 0:
            raise SensitivityError(f"s must be non-negative, got {s}")
        d_max, num_vertices = self._degree_statistics(database)
        return self._ls(d_max, num_vertices, s)

    def _ls(self, d_max: int, num_vertices: int, s: int) -> int:
        degree = min(d_max + s, num_vertices - 1)
        return self._k * falling_factorial(degree - 1, self._k - 1)

    def compute(self, database: Database) -> SensitivityResult:
        """``SS_β`` of the k-star counting CQ."""
        d_max, num_vertices = self._degree_statistics(database)
        s_max = self._s_max
        if s_max is None:
            s_max = int(math.ceil(20.0 * self._k / self._beta))
        best = 0.0
        best_s = 0
        for s in range(s_max + 1):
            raw = self._ls(d_max, num_vertices, s)
            smoothed = math.exp(-self._beta * s) * raw
            if smoothed > best:
                best = smoothed
                best_s = s
            if d_max + s >= num_vertices - 1:
                # The degree cap has been reached: LS^(s) is constant from here
                # on and the discounted series can only decrease.
                break
        return SensitivityResult(
            measure="SS",
            value=best,
            beta=self._beta,
            details={"s_star": best_s, "s_max": s_max, "k": self._k, "d_max": d_max},
        )

    def value(self, database: Database) -> float:
        """Shorthand for ``self.compute(database).value``."""
        return self.compute(database).value
