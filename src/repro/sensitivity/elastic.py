"""Elastic sensitivity ``ES(I)`` (Johnson, Near and Song — the FLEX baseline).

Elastic sensitivity is the other polynomial-time smooth upper bound for CQs
with self-joins.  It only looks at *per-attribute maximum frequencies* of the
base relations, which makes it extremely cheap but, as Section 4.4 of the
paper shows, not even worst-case optimal.

This implementation reconstructs the measure from the way the paper uses it:

* the distance-``k`` bound is a **sum over the private atom copies** ``j`` of
  a **product over the remaining atoms** of single-attribute maximum
  frequencies, where the frequency of a private relation is inflated by
  ``k`` (``mf + k``) because ``k`` changed tuples can all pile onto the most
  frequent value;
* the product walks the remaining atoms in a connected order seeded by the
  removed atom's variables, and each atom contributes the maximum frequency
  of its *first* attribute already reachable (an atom sharing no variable
  contributes its full cardinality — a cross product);
* ``ES(I) = max_k e^{-βk} · L̂S_ES^(k)(I)``.

This reproduces the paper's Example 3 value ``L̂S^(0) = 4·(N/2)³`` on the
path-4 adversarial instance and the Table 1 identities
``ES(q△) = ES(q3∗) = 3·mf²``, ``ES(q□) = 4·mf³``, ``ES(q2△) = 5·mf⁴``
(with ``mf`` the maximum in/out-degree), which is exactly the role elastic
sensitivity plays in the evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.data.database import Database
from repro.exceptions import SensitivityError
from repro.query.atoms import Variable
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import QueryHypergraph
from repro.sensitivity.base import (
    SensitivityResult,
    beta_from_epsilon,
    validate_beta,
)

__all__ = ["ElasticSensitivity"]


@dataclass(frozen=True)
class _AtomFrequencyPlan:
    """Pre-computed traversal for one removed private atom.

    Attributes
    ----------
    removed_atom:
        Index of the private atom copy whose change is being bounded.
    factors:
        One entry per remaining atom, in traversal order:
        ``(atom_index, positions, is_private)`` where ``positions`` are the
        attribute positions whose maximum frequency enters the product
        (empty positions mean the full cardinality is used).
    """

    removed_atom: int
    factors: tuple[tuple[int, tuple[int, ...], bool], ...]


class ElasticSensitivity:
    """Elastic sensitivity for counting CQs (with or without self-joins).

    Parameters
    ----------
    query:
        The conjunctive query.  Predicates and projections are ignored by
        elastic sensitivity (this mirrors the baseline's behaviour that the
        paper criticises in Sections 5 and 6).
    beta / epsilon:
        Exactly one must be given; ``epsilon`` implies ``β = ε / 10``.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        *,
        beta: float | None = None,
        epsilon: float | None = None,
    ):
        if (beta is None) == (epsilon is None):
            raise SensitivityError("provide exactly one of beta= or epsilon=")
        self._beta = validate_beta(beta if beta is not None else beta_from_epsilon(epsilon))
        self._query = query

    @property
    def query(self) -> ConjunctiveQuery:
        """The query whose sensitivity is computed."""
        return self._query

    @property
    def beta(self) -> float:
        """The smoothing parameter ``β``."""
        return self._beta

    # ------------------------------------------------------------------ #
    # Traversal plans
    # ------------------------------------------------------------------ #
    def _plans(self, database: Database) -> list[_AtomFrequencyPlan]:
        self._query.validate_against_schema(database.schema)
        private_atoms = self._query.private_atom_indices(database.schema)
        if not private_atoms:
            raise SensitivityError(
                "the query touches no private relation; elastic sensitivity is undefined"
            )
        plans: list[_AtomFrequencyPlan] = []
        n = self._query.num_atoms
        for removed in private_atoms:
            remaining = [idx for idx in range(n) if idx != removed]
            factors: list[tuple[int, tuple[int, ...], bool]] = []
            if remaining:
                hypergraph = QueryHypergraph(self._query, remaining)
                seen: set[Variable] = set(self._query.atom_variables(removed))
                order = hypergraph.connected_order(seeds=tuple(seen))
                for idx in order:
                    atom = self._query.atoms[idx]
                    positions: tuple[int, ...] = ()
                    for pos, term in enumerate(atom.terms):
                        if isinstance(term, Variable) and term in seen:
                            positions = (pos,)
                            break
                    is_private = database.schema.is_private(atom.relation)
                    factors.append((idx, positions, is_private))
                    seen |= set(atom.variables)
            plans.append(_AtomFrequencyPlan(removed_atom=removed, factors=tuple(factors)))
        return plans

    # ------------------------------------------------------------------ #
    # Distance-k bound and the smoothed value
    # ------------------------------------------------------------------ #
    def _base_frequencies(self, database: Database) -> list[list[tuple[int, bool]]]:
        """Per removed atom: the ``(mf, is_private)`` pairs entering the product."""
        per_plan: list[list[tuple[int, bool]]] = []
        for plan in self._plans(database):
            factors: list[tuple[int, bool]] = []
            for atom_index, positions, is_private in plan.factors:
                atom = self._query.atoms[atom_index]
                relation = database.relation(atom.relation)
                factors.append((relation.max_frequency(positions), is_private))
            per_plan.append(factors)
        return per_plan

    @staticmethod
    def _ls_hat_from_frequencies(
        per_plan: Sequence[Sequence[tuple[int, bool]]], k: int
    ) -> float:
        total = 0.0
        for factors in per_plan:
            product = 1.0
            for frequency, is_private in factors:
                product *= frequency + k if is_private else frequency
            total += product
        return total

    def ls_hat(self, database: Database, k: int) -> float:
        """The elastic distance-``k`` bound ``L̂S_ES^(k)(I)``."""
        if k < 0:
            raise SensitivityError(f"k must be non-negative, got {k}")
        return self._ls_hat_from_frequencies(self._base_frequencies(database), k)

    def _k_cutoff(self) -> int:
        """A safe truncation point for the maximisation over ``k``.

        ``e^{-βk}·Π(mf_i + k)`` has at most ``n-1`` increasing factors, so its
        logarithmic derivative ``Σ 1/(mf_i+k) - β`` is negative once
        ``k > (n-1)/β``; beyond that the series only decreases.
        """
        return int(math.ceil(max(1, self._query.num_atoms) / self._beta)) + 1

    def compute(self, database: Database) -> SensitivityResult:
        """``ES(I) = max_k e^{-βk}·L̂S_ES^(k)(I)``."""
        k_max = self._k_cutoff()
        best = 0.0
        best_k = 0
        series: list[float] = []
        per_plan = self._base_frequencies(database)
        for k in range(k_max + 1):
            raw = self._ls_hat_from_frequencies(per_plan, k)
            series.append(raw)
            smoothed = math.exp(-self._beta * k) * raw
            if smoothed > best:
                best = smoothed
                best_k = k
        return SensitivityResult(
            measure="ES",
            value=best,
            beta=self._beta,
            details={"k_star": best_k, "k_max": k_max, "ls_hat_series": tuple(series)},
        )

    def value(self, database: Database) -> float:
        """Shorthand for ``self.compute(database).value``."""
        return self.compute(database).value
