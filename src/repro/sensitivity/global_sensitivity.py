"""Global sensitivity upper bounds via the AGM bound (Section 3.3).

Under strict (add/remove) DP the global sensitivity of any non-trivial
multi-way join is infinite: a single tuple can participate in an unbounded
number of join results.  Under *relaxed* DP (substitutions only, the
instance size ``N`` public) the paper derives

    GS <= max_{i ∈ P_m} Σ_{E ⊆ D_i, E ≠ ∅} max_I T_{[n]-E}(I)            (16)

and bounds ``max_I T_{[n]-E}(I)`` with the AGM bound of the residual query
after collapsing its boundary variables (treating the logical copies of each
physical relation as distinct relations).  For the triangle query this gives
``GS = O(N)``, for the path-4 query ``GS = O(N²)`` (Examples 1 and 2),
versus the trivial ``O(N^{n_P - 1})``.

The module computes both the symbolic exponent (the power of ``N``) and the
numeric bound for a concrete instance (using the actual relation sizes), plus
the honest ``GS = ∞`` answer for strict DP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.data.database import Database
from repro.engine.agm import fractional_edge_cover
from repro.exceptions import SensitivityError
from repro.query.cq import ConjunctiveQuery
from repro.query.residual import all_subsets_of_block, residual_query
from repro.sensitivity.base import SensitivityResult

__all__ = ["GlobalSensitivityBound"]


@dataclass(frozen=True)
class _ResidualCover:
    """One AGM term of the GS bound: the cover of ``q_{[n]-E}`` with ``∂q`` removed."""

    removed_atoms: tuple[int, ...]
    kept_atoms: tuple[int, ...]
    rho: float
    weights: tuple[tuple[int, float], ...]


class GlobalSensitivityBound:
    """AGM-based global sensitivity bound for counting CQs (relaxed DP).

    Parameters
    ----------
    query:
        The conjunctive query.  Predicates are ignored (dropping predicates
        can only increase counts, so the bound remains valid); projections
        are likewise ignored (the projected count is at most the full count).
    """

    def __init__(self, query: ConjunctiveQuery):
        self._query = query

    @property
    def query(self) -> ConjunctiveQuery:
        """The query whose global sensitivity is bounded."""
        return self._query

    # ------------------------------------------------------------------ #
    # Structure: one fractional cover per (block, removed subset)
    # ------------------------------------------------------------------ #
    def _covers(self, database: Database) -> dict[str, list[_ResidualCover]]:
        self._query.validate_against_schema(database.schema)
        blocks = self._query.private_blocks(database.schema)
        if not blocks:
            raise SensitivityError(
                "the query touches no private relation; its global sensitivity is zero"
            )
        n = self._query.num_atoms
        all_atoms = frozenset(range(n))
        covers: dict[str, list[_ResidualCover]] = {}
        for block in blocks:
            block_covers: list[_ResidualCover] = []
            for removed in all_subsets_of_block(block.atom_indices):
                kept = all_atoms - removed
                if not kept:
                    # Removing every atom: the residual is the empty query, T = 1.
                    block_covers.append(
                        _ResidualCover(
                            removed_atoms=tuple(sorted(removed)),
                            kept_atoms=(),
                            rho=0.0,
                            weights=(),
                        )
                    )
                    continue
                residual = residual_query(self._query, kept)
                cover = fractional_edge_cover(
                    self._query,
                    atom_indices=sorted(kept),
                    ignore_variables=residual.boundary_relational,
                )
                block_covers.append(
                    _ResidualCover(
                        removed_atoms=tuple(sorted(removed)),
                        kept_atoms=tuple(sorted(kept)),
                        rho=cover.rho,
                        weights=cover.weights,
                    )
                )
            covers[block.relation] = block_covers
        return covers

    # ------------------------------------------------------------------ #
    # Public results
    # ------------------------------------------------------------------ #
    def exponent(self, database: Database) -> float:
        """The exponent ``ρ`` such that ``GS = O(N^ρ)`` under relaxed DP.

        This is the largest fractional-edge-cover number among the residual
        queries appearing in Equation (16); e.g. 1.0 for the triangle query
        and 2.0 for the path-4 query.
        """
        covers = self._covers(database)
        return max(
            (cover.rho for block_covers in covers.values() for cover in block_covers),
            default=0.0,
        )

    def compute(self, database: Database, *, strict: bool = False) -> SensitivityResult:
        """The numeric GS bound for the given instance sizes.

        Parameters
        ----------
        strict:
            If ``True``, return the honest strict-DP answer ``GS = ∞`` (the
            paper's Section 2.3): insertions can create unboundedly many
            join results for any query joining two or more private atoms.
        """
        if strict:
            blocks = self._query.private_blocks(database.schema)
            joins_privately = (
                sum(block.copies for block in blocks) >= 2 or self._query.num_atoms >= 2
            )
            value = math.inf if joins_privately else 1.0
            return SensitivityResult(
                measure="GS", value=value, beta=None, details={"policy": "strict"}
            )

        covers = self._covers(database)
        sizes: Mapping[int, int] = {
            idx: len(database.relation(atom.relation))
            for idx, atom in enumerate(self._query.atoms)
        }
        per_block: dict[str, float] = {}
        terms: dict[str, list[dict]] = {}
        for relation, block_covers in covers.items():
            total = 0.0
            block_terms = []
            for cover in block_covers:
                bound = 1.0
                for atom_index, weight in cover.weights:
                    if weight <= 0:
                        continue
                    size = sizes[atom_index]
                    if size == 0:
                        bound = 0.0
                        break
                    bound *= float(size) ** weight
                total += bound
                block_terms.append(
                    {
                        "removed_atoms": cover.removed_atoms,
                        "rho": cover.rho,
                        "bound": bound,
                    }
                )
            per_block[relation] = total
            terms[relation] = block_terms
        value = max(per_block.values()) if per_block else 0.0
        return SensitivityResult(
            measure="GS",
            value=value,
            beta=None,
            details={
                "policy": "relaxed",
                "per_block": per_block,
                "terms": terms,
                "exponent": self.exponent(database),
            },
        )
