"""Residual sensitivity ``RS(I)`` — the paper's mechanism (Sections 3, 5, 6).

Residual sensitivity is a smooth upper bound of smooth sensitivity that can
be computed in polynomial time.  For a full CQ ``q`` over atoms ``[n]`` with
self-join blocks ``D_1, ..., D_m`` (atoms grouped by physical relation) and
private physical relations ``P_m`` (with logical copies ``P_n``), it is

    RS(I)      = max_{k >= 0} e^{-βk} · L̂S^(k)(I)                        (21)
    L̂S^(k)(I)  = max_{s ∈ S_k} max_{i ∈ P_m} Σ_{E ⊆ D_i, E ≠ ∅} T̂_{[n]-E, s}(I)   (19)
    T̂_{F, s}(I) = Σ_{E' ⊆ F} T_{F - E'}(I) · Π_{j ∈ E'} s_j               (20)

where ``S_k`` is the set of valid distance vectors (every logical copy of the
same physical relation carries the same distance, public relations carry
zero, private distances sum to ``k``), and ``T_F(I)`` is the maximum boundary
multiplicity of the residual query on atom subset ``F`` (computed by
:mod:`repro.engine.aggregates`).

Lemma 3.10 shows the maximisation over ``k`` can stop at
``k̂ = m_P / (1 - exp(-β / max_i n_i))``; we iterate ``k = 0 .. ceil(k̂)``.

Two layers of work sharing keep the computation polynomial *and* fast:

* the ``{F → T_F}`` profile is produced in one pass by the shared-lattice
  evaluator (:func:`repro.engine.profile.evaluate_profile`): every subset is
  decomposed into connected components once, each structurally distinct
  component is evaluated once, and per-subset values are assembled from the
  memoized component results (the per-subset reference path survives as
  :meth:`ResidualSensitivity.multiplicities_reference` and is checked
  against the shared path by the differential fuzzer);
* the ``(E, E')`` coefficient structure of Equations (19)–(20) is folded
  once into a ``(block, exponent-vector)`` matrix, after which every
  ``L̂S^(k)`` is a single vectorized NumPy contraction over all distance
  vectors instead of nested Python loops per vector per ``k``.

Predicates (Section 5) and projections (Section 6) are handled entirely
inside the ``T_F`` evaluation: predicates via the Corollary 5.1 /
Section 5.2 boundary treatment, projections by counting distinct output
projections per boundary group.  The formulas above are unchanged.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.data.database import Database
from repro.engine.aggregates import MultiplicityResult, boundary_multiplicity
from repro.engine.profile import (
    PARALLELISM_MODES,
    LatticeProfile,
    ProfileStats,
    evaluate_profile,
)
from repro.exceptions import SensitivityError
from repro.query.cq import ConjunctiveQuery, SelfJoinBlock
from repro.query.residual import all_subsets_of_block
from repro.sensitivity.base import (
    SensitivityResult,
    beta_from_epsilon,
    validate_beta,
)

__all__ = ["ResidualSensitivity", "ResidualSensitivityReport"]


@dataclass(frozen=True)
class ResidualSensitivityReport:
    """Detailed diagnostics of a residual-sensitivity computation.

    Attributes
    ----------
    value:
        ``RS(I)``.
    beta:
        The smoothing parameter used.
    k_star:
        The distance attaining the maximum in Equation (21).
    k_max:
        The largest distance considered (Lemma 3.10 truncation).
    ls_hat_series:
        ``L̂S^(k)(I)`` for ``k = 0 .. k_max``.
    multiplicities:
        ``T_F(I)`` for every residual subset ``F`` the formula needed, keyed
        by the sorted tuple of kept atom indices.
    exact_multiplicities:
        ``True`` if every ``T_F`` was evaluated exactly (no predicate had to
        be dropped by the elimination engine).
    subsets_total:
        Number of residual subsets the profile covers (0 when a precomputed
        profile was supplied and no evaluation ran).
    components_evaluated:
        Distinct residual-component evaluations the shared-lattice evaluator
        actually ran (see :class:`repro.engine.profile.ProfileStats`).
    factorization_hits:
        Columnar factorization-cache hits observed during the profile
        evaluation (0 on the pure-Python backend, which has no columns).
    """

    value: float
    beta: float
    k_star: int
    k_max: int
    ls_hat_series: tuple[float, ...]
    multiplicities: Mapping[tuple[int, ...], int]
    exact_multiplicities: bool
    subsets_total: int = 0
    components_evaluated: int = 0
    factorization_hits: int = 0


class ResidualSensitivity:
    """Residual sensitivity for full and non-full CQs with self-joins and predicates.

    Parameters
    ----------
    query:
        The conjunctive query (its projection and predicates, if any, are
        honoured as described in the module docstring).
    beta:
        The smoothing parameter ``β``.  Exactly one of ``beta`` / ``epsilon``
        must be provided; with ``epsilon`` the paper's choice ``β = ε/10`` is
        used.
    epsilon:
        The privacy parameter, used only to derive ``β``.
    strategy:
        Evaluation strategy for the boundary multiplicities (``"auto"``,
        ``"enumerate"`` or ``"eliminate"``); see
        :func:`repro.engine.aggregates.boundary_multiplicity`.
    backend:
        Execution backend (name, instance or ``None`` for the process
        default) used for the boundary-multiplicity group counts; the
        ``"numpy"`` backend vectorizes them as columnar group-by
        aggregations.  Backends produce identical sensitivity values.
    k_max:
        Optional override of the Lemma 3.10 truncation point (mainly for
        tests).
    parallelism:
        Fan independent residual-component evaluations out over a worker
        pool of this size (``None``/``0``/``1`` — the default — evaluates
        serially in thread mode, or uses the per-core default pool size in
        process mode).  Purely a throughput knob: results are identical.
    parallelism_mode:
        ``"thread"`` (the ``None`` default), ``"process"`` or ``"auto"`` —
        whether component fan-out uses an in-process thread pool or the
        shared GIL-free process pool of :mod:`repro.engine.procpool`
        (``"auto"`` switches on lattice size).  See
        :func:`repro.engine.profile.evaluate_profile`.

    Examples
    --------
    >>> from repro.data import DatabaseSchema, Database
    >>> from repro.query import parse_query
    >>> schema = DatabaseSchema.from_arities({"R": 2, "S": 2})
    >>> db = Database.from_rows(schema, R=[(1, 2), (2, 2)], S=[(2, 5), (2, 7)])
    >>> q = parse_query("R(x, y), S(y, z)")
    >>> rs = ResidualSensitivity(q, beta=0.1)
    >>> rs.compute(db).value > 0
    True
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        *,
        beta: float | None = None,
        epsilon: float | None = None,
        strategy: str = "auto",
        backend: str | None = None,
        k_max: int | None = None,
        parallelism: int | None = None,
        parallelism_mode: str | None = None,
    ):
        if (beta is None) == (epsilon is None):
            raise SensitivityError("provide exactly one of beta= or epsilon=")
        if parallelism is not None and parallelism < 0:
            raise SensitivityError(f"parallelism must be non-negative, got {parallelism}")
        if parallelism_mode is not None and parallelism_mode not in PARALLELISM_MODES:
            raise SensitivityError(
                f"unknown parallelism_mode {parallelism_mode!r}; "
                f"expected one of {PARALLELISM_MODES}"
            )
        self._beta = validate_beta(beta if beta is not None else beta_from_epsilon(epsilon))
        self._query = query
        self._strategy = strategy
        self._backend = backend
        self._k_max_override = k_max
        self._parallelism = parallelism
        self._parallelism_mode = parallelism_mode

    # ------------------------------------------------------------------ #
    # Public accessors
    # ------------------------------------------------------------------ #
    @property
    def query(self) -> ConjunctiveQuery:
        """The query whose sensitivity is computed."""
        return self._query

    @property
    def beta(self) -> float:
        """The smoothing parameter ``β``."""
        return self._beta

    # ------------------------------------------------------------------ #
    # Structural preparation
    # ------------------------------------------------------------------ #
    def _private_blocks(self, database: Database) -> tuple[SelfJoinBlock, ...]:
        self._query.validate_against_schema(database.schema)
        blocks = self._query.private_blocks(database.schema)
        if not blocks:
            raise SensitivityError(
                "the query touches no private relation; residual sensitivity is "
                "undefined (the count can be released without noise)"
            )
        return blocks

    def required_subsets(self, database: Database) -> list[frozenset[int]]:
        """The kept-atom subsets ``F`` whose ``T_F`` the formula needs.

        For every private block ``D_i``, every non-empty ``E ⊆ D_i`` and
        every ``E' ⊆ P_n - E``, the subset ``F = [n] - E - E'`` is required
        (terms with ``E'`` touching a public atom vanish because the distance
        of public relations is zero).
        """
        blocks = self._private_blocks(database)
        private_atoms = frozenset(
            idx for block in blocks for idx in block.atom_indices
        )
        n = self._query.num_atoms
        all_atoms = frozenset(range(n))
        needed: set[frozenset[int]] = set()
        for block in blocks:
            for removed in all_subsets_of_block(block.atom_indices):
                remaining_private = private_atoms - removed
                for size in range(len(remaining_private) + 1):
                    for extra in itertools.combinations(sorted(remaining_private), size):
                        needed.add(all_atoms - removed - frozenset(extra))
        return sorted(needed, key=lambda s: (len(s), tuple(sorted(s))))

    def lemma_3_10_k_max(self, database: Database) -> int:
        """The truncation point ``ceil(m_P / (1 - exp(-β / max_i n_i)))`` of Lemma 3.10."""
        blocks = self._private_blocks(database)
        m_p = len(blocks)
        max_copies = max(block.copies for block in self._query.self_join_blocks)
        denominator = 1.0 - math.exp(-self._beta / max_copies)
        return int(math.ceil(m_p / denominator))

    # ------------------------------------------------------------------ #
    # Core computation
    # ------------------------------------------------------------------ #
    def profile(
        self,
        database: Database,
        *,
        component_cache=None,
        cache_scope: tuple = (),
    ) -> LatticeProfile:
        """The full ``{F → T_F}`` profile, evaluated by the shared-lattice pass.

        One pass over the residual lattice: subsets are decomposed into
        connected components, each structurally distinct component is
        evaluated once, and per-subset results are assembled from the
        memoized components (see :func:`repro.engine.profile.evaluate_profile`).
        The returned :class:`~repro.engine.profile.LatticeProfile` carries
        work-sharing statistics alongside the results.

        ``component_cache`` / ``cache_scope`` optionally persist
        representative-component results across calls under epoch-sensitive
        keys, so re-profiling after a delta mutation re-evaluates only the
        components whose relations changed (see ``docs/mutation.md``).
        """
        return evaluate_profile(
            self._query,
            database,
            self.required_subsets(database),
            strategy=self._strategy,
            backend=self._backend,
            parallelism=self._parallelism,
            parallelism_mode=self._parallelism_mode,
            component_cache=component_cache,
            cache_scope=cache_scope,
        )

    def multiplicities(self, database: Database) -> dict[frozenset[int], MultiplicityResult]:
        """Evaluate ``T_F(I)`` for every required subset ``F`` (shared-lattice pass)."""
        return dict(self.profile(database).results)

    def multiplicities_reference(
        self, database: Database
    ) -> dict[frozenset[int], MultiplicityResult]:
        """The per-subset reference evaluation of the profile.

        Each ``T_F`` is computed by an isolated
        :func:`~repro.engine.aggregates.boundary_multiplicity` call, sharing
        nothing across the lattice.  Kept as the semantic baseline: the
        differential fuzzer asserts :meth:`multiplicities` matches it (value,
        exactness, dropped predicates) on every generated workload, and the
        profile benchmark measures the shared pass against it.
        """
        results: dict[frozenset[int], MultiplicityResult] = {}
        for kept in self.required_subsets(database):
            results[kept] = boundary_multiplicity(
                self._query,
                database,
                kept,
                strategy=self._strategy,
                backend=self._backend,
            )
        return results

    @staticmethod
    def _distance_vectors(total: int, parts: int) -> Iterable[tuple[int, ...]]:
        """All compositions of ``total`` into ``parts`` non-negative integers.

        An iterative stars-and-bars successor walk in ascending
        lexicographic order (the order the recursive formulation produced):
        starting from ``(0, ..., 0, total)``, repeatedly increment the
        rightmost position that still has weight to its right and flush that
        weight (minus one) back to the last position.  Iteration keeps the
        generator O(parts) per vector with no recursion depth or tuple
        re-concatenation, so large ``total × parts`` grids stream safely.
        """
        if parts <= 0:
            if parts == 0 and total == 0:
                yield ()
            return
        vector = [0] * parts
        vector[-1] = total
        while True:
            yield tuple(vector)
            # Find the rightmost position with weight to its right;
            # ``tail`` tracks sum(vector[position + 1:]) as we scan left.
            position = parts - 2
            tail = vector[parts - 1]
            while position >= 0 and tail == 0:
                tail += vector[position]
                position -= 1
            if position < 0:
                return
            vector[position] += 1
            for i in range(position + 1, parts):
                vector[i] = 0
            vector[parts - 1] = tail - 1

    def _ls_hat_structure(
        self,
        blocks: Sequence[SelfJoinBlock],
        t_value: Mapping[frozenset[int], int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fold Equations (19)–(20) into a ``(block, exponent-vector)`` matrix.

        Every term of ``Σ_{E ⊆ D_i} T̂_{[n]-E, s}`` is ``T_{[n]-E-E'} ·
        Π_{j ∈ E'} s_j``, and the monomial ``Π s_j`` depends only on how many
        atoms of each self-join block ``E'`` contains.  Grouping the terms by
        that exponent vector once yields coefficients ``C[i, e] = Σ T_F`` —
        after which ``L̂S^(k)`` for *any* distance vector ``s`` is the single
        contraction ``max_i Σ_e C[i, e] · Π_b s_b^{e_b}``, evaluated for all
        vectors of all ``k`` as NumPy matrix products.

        Returns ``(exponents, coefficients)`` with shapes ``(terms, m)`` and
        ``(m_P, terms)``.
        """
        m = len(blocks)
        private_atoms = [idx for block in blocks for idx in block.atom_indices]
        atom_block = {
            idx: block_pos
            for block_pos, block in enumerate(blocks)
            for idx in block.atom_indices
        }
        n = self._query.num_atoms
        all_atoms = frozenset(range(n))

        exponent_index: dict[tuple[int, ...], int] = {}
        entries: list[dict[int, int]] = [dict() for _ in blocks]
        for block_pos, block in enumerate(blocks):
            bucket = entries[block_pos]
            for removed in all_subsets_of_block(block.atom_indices):
                remaining_private = [a for a in private_atoms if a not in removed]
                # T̂_{[n]-E, s} = Σ_{E' ⊆ P_n - E} T_{[n]-E-E'} Π_{j ∈ E'} s_j
                for size in range(len(remaining_private) + 1):
                    for extra in itertools.combinations(remaining_private, size):
                        exponents = [0] * m
                        for j in extra:
                            exponents[atom_block[j]] += 1
                        kept = all_atoms - removed - frozenset(extra)
                        index = exponent_index.setdefault(
                            tuple(exponents), len(exponent_index)
                        )
                        bucket[index] = bucket.get(index, 0) + t_value[kept]

        exponent_matrix = np.array(list(exponent_index), dtype=np.int64).reshape(
            len(exponent_index), m
        )
        coefficients = np.zeros((len(blocks), len(exponent_index)), dtype=np.float64)
        for block_pos, bucket in enumerate(entries):
            for index, coefficient in bucket.items():
                coefficients[block_pos, index] = coefficient
        return exponent_matrix, coefficients

    #: Distance vectors per vectorized batch: bounds the working set of the
    #: contraction to ``chunk × terms`` floats even when a tiny ``β`` pushes
    #: ``k_max`` (and with it the composition count) into the millions.
    _LS_HAT_CHUNK = 1 << 15

    def _ls_hat_from_structure(
        self, structure: tuple[np.ndarray, np.ndarray], k: int
    ) -> float:
        """``L̂S^(k)`` as a vectorized contraction over all distance vectors.

        Vectors stream in bounded chunks and the monomials ``Π_b s_b^{e_b}``
        are accumulated block by block (with ``0^0 = 1`` for empty products),
        so memory stays O(chunk × terms) rather than O(vectors × terms × m).
        """
        exponents, coefficients = structure
        m = exponents.shape[1]
        best = 0.0

        def fold(batch: list[tuple[int, ...]]) -> float:
            vectors = np.array(batch, dtype=np.int64).reshape(-1, m)
            monomials = np.ones((len(batch), exponents.shape[0]), dtype=np.float64)
            for b in range(m):
                monomials *= np.power(
                    vectors[:, b : b + 1].astype(np.float64), exponents[None, :, b]
                )
            totals = monomials @ coefficients.T  # (vectors, blocks)
            return float(totals.max()) if totals.size else 0.0

        batch: list[tuple[int, ...]] = []
        for vector in self._distance_vectors(k, m):
            batch.append(vector)
            if len(batch) >= self._LS_HAT_CHUNK:
                best = max(best, fold(batch))
                batch = []
        if batch:
            best = max(best, fold(batch))
        return max(best, 0.0)

    def ls_hat(
        self,
        database: Database,
        k: int,
        multiplicities: Mapping[frozenset[int], MultiplicityResult] | None = None,
    ) -> float:
        """``L̂S^(k)(I)`` (Equation 19)."""
        if k < 0:
            raise SensitivityError(f"k must be non-negative, got {k}")
        blocks = self._private_blocks(database)
        if multiplicities is None:
            multiplicities = self.multiplicities(database)
        t_value = {kept: result.value for kept, result in multiplicities.items()}
        return self._ls_hat_from_structure(self._ls_hat_structure(blocks, t_value), k)

    def compute(
        self,
        database: Database,
        multiplicities: Mapping[frozenset[int], MultiplicityResult] | None = None,
    ) -> SensitivityResult:
        """``RS(I)`` with full diagnostics (Equation 21, truncated by Lemma 3.10).

        ``multiplicities`` may be supplied to reuse previously computed
        ``T_F`` values (they do not depend on ``β``); the β-sweep experiment
        (Figure 3) and the serving layer's profile cache rely on this to
        evaluate many values of ``β`` with a single round of residual-query
        evaluation (the profiler counters of the report then stay zero —
        no evaluation ran).
        """
        blocks = self._private_blocks(database)
        stats: ProfileStats | None = None
        if multiplicities is None:
            profile = self.profile(database)
            multiplicities = profile.results
            stats = profile.stats
        k_max = (
            self._k_max_override
            if self._k_max_override is not None
            else self.lemma_3_10_k_max(database)
        )
        t_value = {kept: result.value for kept, result in multiplicities.items()}
        structure = self._ls_hat_structure(blocks, t_value)
        series: list[float] = []
        best = 0.0
        best_k = 0
        for k in range(k_max + 1):
            ls_hat_k = self._ls_hat_from_structure(structure, k)
            series.append(ls_hat_k)
            smoothed = math.exp(-self._beta * k) * ls_hat_k
            if smoothed > best:
                best = smoothed
                best_k = k
        exact = all(result.exact for result in multiplicities.values())
        report = ResidualSensitivityReport(
            value=best,
            beta=self._beta,
            k_star=best_k,
            k_max=k_max,
            ls_hat_series=tuple(series),
            multiplicities={
                tuple(sorted(kept)): result.value for kept, result in multiplicities.items()
            },
            exact_multiplicities=exact,
            subsets_total=stats.subsets_total if stats is not None else 0,
            components_evaluated=stats.components_evaluated if stats is not None else 0,
            factorization_hits=stats.factorization_hits if stats is not None else 0,
        )
        return SensitivityResult(
            measure="RS",
            value=best,
            beta=self._beta,
            details={
                "k_star": best_k,
                "k_max": k_max,
                "ls_hat_series": tuple(series),
                "multiplicities": report.multiplicities,
                "exact_multiplicities": exact,
                "profiler": stats.to_dict() if stats is not None else None,
                "report": report,
            },
        )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def value(self, database: Database) -> float:
        """Shorthand for ``self.compute(database).value``."""
        return self.compute(database).value
