"""Residual sensitivity ``RS(I)`` — the paper's mechanism (Sections 3, 5, 6).

Residual sensitivity is a smooth upper bound of smooth sensitivity that can
be computed in polynomial time.  For a full CQ ``q`` over atoms ``[n]`` with
self-join blocks ``D_1, ..., D_m`` (atoms grouped by physical relation) and
private physical relations ``P_m`` (with logical copies ``P_n``), it is

    RS(I)      = max_{k >= 0} e^{-βk} · L̂S^(k)(I)                        (21)
    L̂S^(k)(I)  = max_{s ∈ S_k} max_{i ∈ P_m} Σ_{E ⊆ D_i, E ≠ ∅} T̂_{[n]-E, s}(I)   (19)
    T̂_{F, s}(I) = Σ_{E' ⊆ F} T_{F - E'}(I) · Π_{j ∈ E'} s_j               (20)

where ``S_k`` is the set of valid distance vectors (every logical copy of the
same physical relation carries the same distance, public relations carry
zero, private distances sum to ``k``), and ``T_F(I)`` is the maximum boundary
multiplicity of the residual query on atom subset ``F`` (computed by
:mod:`repro.engine.aggregates`).

Lemma 3.10 shows the maximisation over ``k`` can stop at
``k̂ = m_P / (1 - exp(-β / max_i n_i))``; we iterate ``k = 0 .. ceil(k̂)``.

Predicates (Section 5) and projections (Section 6) are handled entirely
inside the ``T_F`` evaluation: predicates via the Corollary 5.1 /
Section 5.2 boundary treatment, projections by counting distinct output
projections per boundary group.  The formulas above are unchanged.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.data.database import Database
from repro.engine.aggregates import MultiplicityResult, boundary_multiplicity
from repro.exceptions import SensitivityError
from repro.query.cq import ConjunctiveQuery, SelfJoinBlock
from repro.query.residual import all_subsets_of_block
from repro.sensitivity.base import (
    SensitivityResult,
    beta_from_epsilon,
    validate_beta,
)

__all__ = ["ResidualSensitivity", "ResidualSensitivityReport"]


@dataclass(frozen=True)
class ResidualSensitivityReport:
    """Detailed diagnostics of a residual-sensitivity computation.

    Attributes
    ----------
    value:
        ``RS(I)``.
    beta:
        The smoothing parameter used.
    k_star:
        The distance attaining the maximum in Equation (21).
    k_max:
        The largest distance considered (Lemma 3.10 truncation).
    ls_hat_series:
        ``L̂S^(k)(I)`` for ``k = 0 .. k_max``.
    multiplicities:
        ``T_F(I)`` for every residual subset ``F`` the formula needed, keyed
        by the sorted tuple of kept atom indices.
    exact_multiplicities:
        ``True`` if every ``T_F`` was evaluated exactly (no predicate had to
        be dropped by the elimination engine).
    """

    value: float
    beta: float
    k_star: int
    k_max: int
    ls_hat_series: tuple[float, ...]
    multiplicities: Mapping[tuple[int, ...], int]
    exact_multiplicities: bool


class ResidualSensitivity:
    """Residual sensitivity for full and non-full CQs with self-joins and predicates.

    Parameters
    ----------
    query:
        The conjunctive query (its projection and predicates, if any, are
        honoured as described in the module docstring).
    beta:
        The smoothing parameter ``β``.  Exactly one of ``beta`` / ``epsilon``
        must be provided; with ``epsilon`` the paper's choice ``β = ε/10`` is
        used.
    epsilon:
        The privacy parameter, used only to derive ``β``.
    strategy:
        Evaluation strategy for the boundary multiplicities (``"auto"``,
        ``"enumerate"`` or ``"eliminate"``); see
        :func:`repro.engine.aggregates.boundary_multiplicity`.
    backend:
        Execution backend (name, instance or ``None`` for the process
        default) used for the boundary-multiplicity group counts; the
        ``"numpy"`` backend vectorizes them as columnar group-by
        aggregations.  Backends produce identical sensitivity values.
    k_max:
        Optional override of the Lemma 3.10 truncation point (mainly for
        tests).

    Examples
    --------
    >>> from repro.data import DatabaseSchema, Database
    >>> from repro.query import parse_query
    >>> schema = DatabaseSchema.from_arities({"R": 2, "S": 2})
    >>> db = Database.from_rows(schema, R=[(1, 2), (2, 2)], S=[(2, 5), (2, 7)])
    >>> q = parse_query("R(x, y), S(y, z)")
    >>> rs = ResidualSensitivity(q, beta=0.1)
    >>> rs.compute(db).value > 0
    True
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        *,
        beta: float | None = None,
        epsilon: float | None = None,
        strategy: str = "auto",
        backend: str | None = None,
        k_max: int | None = None,
    ):
        if (beta is None) == (epsilon is None):
            raise SensitivityError("provide exactly one of beta= or epsilon=")
        self._beta = validate_beta(beta if beta is not None else beta_from_epsilon(epsilon))
        self._query = query
        self._strategy = strategy
        self._backend = backend
        self._k_max_override = k_max

    # ------------------------------------------------------------------ #
    # Public accessors
    # ------------------------------------------------------------------ #
    @property
    def query(self) -> ConjunctiveQuery:
        """The query whose sensitivity is computed."""
        return self._query

    @property
    def beta(self) -> float:
        """The smoothing parameter ``β``."""
        return self._beta

    # ------------------------------------------------------------------ #
    # Structural preparation
    # ------------------------------------------------------------------ #
    def _private_blocks(self, database: Database) -> tuple[SelfJoinBlock, ...]:
        self._query.validate_against_schema(database.schema)
        blocks = self._query.private_blocks(database.schema)
        if not blocks:
            raise SensitivityError(
                "the query touches no private relation; residual sensitivity is "
                "undefined (the count can be released without noise)"
            )
        return blocks

    def required_subsets(self, database: Database) -> list[frozenset[int]]:
        """The kept-atom subsets ``F`` whose ``T_F`` the formula needs.

        For every private block ``D_i``, every non-empty ``E ⊆ D_i`` and
        every ``E' ⊆ P_n - E``, the subset ``F = [n] - E - E'`` is required
        (terms with ``E'`` touching a public atom vanish because the distance
        of public relations is zero).
        """
        blocks = self._private_blocks(database)
        private_atoms = frozenset(
            idx for block in blocks for idx in block.atom_indices
        )
        n = self._query.num_atoms
        all_atoms = frozenset(range(n))
        needed: set[frozenset[int]] = set()
        for block in blocks:
            for removed in all_subsets_of_block(block.atom_indices):
                remaining_private = private_atoms - removed
                for size in range(len(remaining_private) + 1):
                    for extra in itertools.combinations(sorted(remaining_private), size):
                        needed.add(all_atoms - removed - frozenset(extra))
        return sorted(needed, key=lambda s: (len(s), tuple(sorted(s))))

    def lemma_3_10_k_max(self, database: Database) -> int:
        """The truncation point ``ceil(m_P / (1 - exp(-β / max_i n_i)))`` of Lemma 3.10."""
        blocks = self._private_blocks(database)
        m_p = len(blocks)
        max_copies = max(block.copies for block in self._query.self_join_blocks)
        denominator = 1.0 - math.exp(-self._beta / max_copies)
        return int(math.ceil(m_p / denominator))

    # ------------------------------------------------------------------ #
    # Core computation
    # ------------------------------------------------------------------ #
    def multiplicities(self, database: Database) -> dict[frozenset[int], MultiplicityResult]:
        """Evaluate ``T_F(I)`` for every required subset ``F`` (cached per call)."""
        results: dict[frozenset[int], MultiplicityResult] = {}
        for kept in self.required_subsets(database):
            results[kept] = boundary_multiplicity(
                self._query,
                database,
                kept,
                strategy=self._strategy,
                backend=self._backend,
            )
        return results

    @staticmethod
    def _distance_vectors(total: int, parts: int) -> Iterable[tuple[int, ...]]:
        """All compositions of ``total`` into ``parts`` non-negative integers."""
        if parts == 1:
            yield (total,)
            return
        for first in range(total + 1):
            for rest in ResidualSensitivity._distance_vectors(total - first, parts - 1):
                yield (first,) + rest

    def ls_hat(
        self,
        database: Database,
        k: int,
        multiplicities: Mapping[frozenset[int], MultiplicityResult] | None = None,
    ) -> float:
        """``L̂S^(k)(I)`` (Equation 19)."""
        if k < 0:
            raise SensitivityError(f"k must be non-negative, got {k}")
        blocks = self._private_blocks(database)
        if multiplicities is None:
            multiplicities = self.multiplicities(database)
        t_value = {kept: result.value for kept, result in multiplicities.items()}

        private_atoms = [idx for block in blocks for idx in block.atom_indices]
        atom_block = {
            idx: block_pos
            for block_pos, block in enumerate(blocks)
            for idx in block.atom_indices
        }
        n = self._query.num_atoms
        all_atoms = frozenset(range(n))

        best = 0.0
        for vector in self._distance_vectors(k, len(blocks)):
            s_of_atom = {idx: vector[atom_block[idx]] for idx in private_atoms}
            for block_pos, block in enumerate(blocks):
                total = 0.0
                for removed in all_subsets_of_block(block.atom_indices):
                    remaining_private = [a for a in private_atoms if a not in removed]
                    # T̂_{[n]-E, s} = Σ_{E' ⊆ P_n - E} T_{[n]-E-E'} Π_{j ∈ E'} s_j
                    for size in range(len(remaining_private) + 1):
                        for extra in itertools.combinations(remaining_private, size):
                            product = 1
                            for j in extra:
                                product *= s_of_atom[j]
                            if product == 0 and size > 0:
                                continue
                            kept = all_atoms - removed - frozenset(extra)
                            total += t_value[kept] * product
                best = max(best, total)
        return best

    def compute(
        self,
        database: Database,
        multiplicities: Mapping[frozenset[int], MultiplicityResult] | None = None,
    ) -> SensitivityResult:
        """``RS(I)`` with full diagnostics (Equation 21, truncated by Lemma 3.10).

        ``multiplicities`` may be supplied to reuse previously computed
        ``T_F`` values (they do not depend on ``β``); the β-sweep experiment
        (Figure 3) relies on this to evaluate many values of ``β`` with a
        single round of residual-query evaluation.
        """
        if multiplicities is None:
            multiplicities = self.multiplicities(database)
        k_max = (
            self._k_max_override
            if self._k_max_override is not None
            else self.lemma_3_10_k_max(database)
        )
        series: list[float] = []
        best = 0.0
        best_k = 0
        for k in range(k_max + 1):
            ls_hat_k = self.ls_hat(database, k, multiplicities)
            series.append(ls_hat_k)
            smoothed = math.exp(-self._beta * k) * ls_hat_k
            if smoothed > best:
                best = smoothed
                best_k = k
        exact = all(result.exact for result in multiplicities.values())
        report = ResidualSensitivityReport(
            value=best,
            beta=self._beta,
            k_star=best_k,
            k_max=k_max,
            ls_hat_series=tuple(series),
            multiplicities={
                tuple(sorted(kept)): result.value for kept, result in multiplicities.items()
            },
            exact_multiplicities=exact,
        )
        return SensitivityResult(
            measure="RS",
            value=best,
            beta=self._beta,
            details={
                "k_star": best_k,
                "k_max": k_max,
                "ls_hat_series": tuple(series),
                "multiplicities": report.multiplicities,
                "exact_multiplicities": exact,
                "report": report,
            },
        )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def value(self, database: Database) -> float:
        """Shorthand for ``self.compute(database).value``."""
        return self.compute(database).value
