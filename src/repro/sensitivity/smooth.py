"""Smooth sensitivity ``SS_β(I)`` — generic machinery and brute-force reference.

Smooth sensitivity (Nissim, Raskhodnikova and Smith) is

    SS_β(I) = max_{k >= 0} e^{-βk} · LS^(k)(I),

and any *smooth upper bound* obtained by replacing ``LS^(k)`` with a series
``L̂S^(k)`` that (a) upper-bounds ``LS^(k)`` and (b) satisfies the smoothness
property ``L̂S^(k)(I) <= L̂S^(k+1)(I')`` for neighbors ``I, I'`` can be used to
calibrate noise while preserving ε-DP (Equations 6–8 of the paper).

This module provides:

* :func:`smooth_from_series` — the generic smoothing operator
  ``max_k e^{-βk}·series[k]`` used by every concrete measure (residual,
  elastic, closed-form triangle/star, brute force);
* :class:`SmoothSensitivityBruteForce` — the exact (exponential-time)
  ``SS_β`` computed from the brute-force ``LS^(k)`` of
  :mod:`repro.sensitivity.local`; it exists so tests can validate the
  polynomial measures on tiny instances.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.data.database import Database
from repro.exceptions import SensitivityError
from repro.query.cq import ConjunctiveQuery
from repro.sensitivity.base import SensitivityResult, validate_beta
from repro.sensitivity.local import local_sensitivity_at_distance

__all__ = ["smooth_from_series", "smooth_from_function", "SmoothSensitivityBruteForce"]


def smooth_from_series(series: Sequence[float], beta: float) -> tuple[float, int]:
    """``max_k e^{-βk}·series[k]`` and the maximising ``k``.

    Parameters
    ----------
    series:
        The values ``L̂S^(0), L̂S^(1), ...`` (any finite prefix — the caller is
        responsible for the prefix being long enough, e.g. via Lemma 3.10).
    beta:
        The smoothing parameter.

    Returns
    -------
    (value, k_star):
        The smoothed value and the index attaining it (0 if the series is
        empty).
    """
    beta = validate_beta(beta)
    best = 0.0
    best_k = 0
    for k, raw in enumerate(series):
        if raw < 0:
            raise SensitivityError(f"sensitivity series must be non-negative, got {raw} at k={k}")
        smoothed = math.exp(-beta * k) * raw
        if smoothed > best:
            best = smoothed
            best_k = k
    return best, best_k


def smooth_from_function(
    ls_at_distance: Callable[[int], float],
    beta: float,
    k_max: int,
) -> tuple[float, int, list[float]]:
    """Evaluate the smoothing operator for ``k = 0..k_max`` given a callable.

    Returns the smoothed value, the maximising ``k``, and the raw series
    (useful for diagnostics and the β-sweep experiments).
    """
    if k_max < 0:
        raise SensitivityError(f"k_max must be non-negative, got {k_max}")
    series = [float(ls_at_distance(k)) for k in range(k_max + 1)]
    value, k_star = smooth_from_series(series, beta)
    return value, k_star, series


class SmoothSensitivityBruteForce:
    """Exact smooth sensitivity by brute force (reference implementation).

    The distance-``k`` local sensitivities are computed by exhaustive search
    over the distance-``k`` ball (see
    :func:`repro.sensitivity.local.local_sensitivity_at_distance`), so this
    class is only usable on tiny instances with finite domains.  The series
    is truncated at ``k_max``; because ``LS^(k)`` is bounded by the largest
    possible query answer on the (finite) domain, a moderate ``k_max``
    together with the exponential discount makes the truncation error
    negligible for test purposes, and the truncated value is always a lower
    bound on the true ``SS_β``.

    Parameters
    ----------
    query:
        The counting query.
    beta:
        Smoothing parameter ``β``.
    k_max:
        Largest distance included in the maximisation (default 3).
    """

    def __init__(self, query: ConjunctiveQuery, beta: float, k_max: int = 3):
        self._query = query
        self._beta = validate_beta(beta)
        if k_max < 0:
            raise SensitivityError(f"k_max must be non-negative, got {k_max}")
        self._k_max = k_max

    @property
    def query(self) -> ConjunctiveQuery:
        """The query whose sensitivity is computed."""
        return self._query

    @property
    def beta(self) -> float:
        """The smoothing parameter."""
        return self._beta

    def ls_at_distance(self, database: Database, k: int) -> int:
        """Exact ``LS^(k)(I)`` (brute force)."""
        result = local_sensitivity_at_distance(self._query, database, k)
        return int(result.value)

    def compute(self, database: Database) -> SensitivityResult:
        """Exact (truncated) ``SS_β(I)``."""
        value, k_star, series = smooth_from_function(
            lambda k: self.ls_at_distance(database, k), self._beta, self._k_max
        )
        return SensitivityResult(
            measure="SS",
            value=value,
            beta=self._beta,
            details={"series": series, "k_star": k_star, "k_max": self._k_max},
        )
