"""Sensitivity measures for conjunctive queries.

The noise added by a sensitivity-based DP mechanism is calibrated to one of
the measures implemented here:

* :mod:`repro.sensitivity.local` — local sensitivity ``LS(I)`` and its
  distance-``k`` variant ``LS^(k)(I)`` (exact brute force on finite domains,
  plus the residual-query characterisations of Lemma 3.3 / Theorem 3.5);
* :mod:`repro.sensitivity.global_sensitivity` — AGM-based global-sensitivity
  upper bounds (Section 3.3);
* :mod:`repro.sensitivity.smooth` — smooth sensitivity ``SS(I)`` (generic
  brute-force reference implementation and the generic smoothing operator);
* :mod:`repro.sensitivity.smooth_triangle` / ``smooth_star`` — closed-form
  smooth sensitivity for triangle and k-star counting (the only CQ families
  with known polynomial exact algorithms, used as the SS baseline of
  Table 1);
* :mod:`repro.sensitivity.residual` — **residual sensitivity** ``RS(I)``,
  the paper's mechanism, for full CQs with self-joins, predicates and
  projections (Sections 3, 5, 6);
* :mod:`repro.sensitivity.elastic` — elastic sensitivity ``ES(I)`` (the
  FLEX baseline, Section 4.4);
* :mod:`repro.sensitivity.lower_bounds` — neighborhood lower bounds
  (Lemmas 4.2 and 4.5) and empirical optimality ratios.
"""

from repro.sensitivity.base import SensitivityResult, beta_from_epsilon
from repro.sensitivity.elastic import ElasticSensitivity
from repro.sensitivity.global_sensitivity import GlobalSensitivityBound
from repro.sensitivity.local import (
    local_sensitivity_at_distance,
    local_sensitivity_exact,
    local_sensitivity_upper_bound,
)
from repro.sensitivity.lower_bounds import (
    lemma_4_5_lower_bound,
    neighborhood_lower_bound,
)
from repro.sensitivity.residual import ResidualSensitivity
from repro.sensitivity.smooth import SmoothSensitivityBruteForce, smooth_from_series
from repro.sensitivity.smooth_star import StarSmoothSensitivity
from repro.sensitivity.smooth_triangle import TriangleSmoothSensitivity

__all__ = [
    "ElasticSensitivity",
    "GlobalSensitivityBound",
    "ResidualSensitivity",
    "SensitivityResult",
    "SmoothSensitivityBruteForce",
    "StarSmoothSensitivity",
    "TriangleSmoothSensitivity",
    "beta_from_epsilon",
    "lemma_4_5_lower_bound",
    "local_sensitivity_at_distance",
    "local_sensitivity_exact",
    "local_sensitivity_upper_bound",
    "neighborhood_lower_bound",
    "smooth_from_series",
]
