"""Query hypergraphs: structure analysis for conjunctive queries.

The hypergraph of a CQ has one vertex per variable and one hyperedge per
atom.  The library uses it for

* **acyclicity detection** via the GYO (Graham–Yu–Özsoyoğlu) reduction and
  construction of a join tree when the query is α-acyclic,
* **connectivity** queries (connected components, traversal orders) used by
  the join planner and by elastic sensitivity, and
* input to the **fractional edge cover LP** behind the AGM bound
  (:mod:`repro.engine.agm`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import QueryError
from repro.query.atoms import Variable
from repro.query.cq import ConjunctiveQuery

__all__ = ["QueryHypergraph", "JoinTreeNode"]


@dataclass
class JoinTreeNode:
    """A node of a join tree: an atom index plus its children."""

    atom_index: int
    children: list["JoinTreeNode"]

    def all_indices(self) -> list[int]:
        """The atom indices of the subtree rooted here (pre-order)."""
        result = [self.atom_index]
        for child in self.children:
            result.extend(child.all_indices())
        return result


class QueryHypergraph:
    """The hypergraph of a conjunctive query (restricted to a subset of atoms)."""

    def __init__(self, query: ConjunctiveQuery, atom_indices: Iterable[int] | None = None):
        self._query = query
        if atom_indices is None:
            self._indices = tuple(range(query.num_atoms))
        else:
            self._indices = tuple(sorted(set(atom_indices)))
            for idx in self._indices:
                if idx < 0 or idx >= query.num_atoms:
                    raise QueryError(f"atom index {idx} out of range")
        self._edges: dict[int, frozenset[Variable]] = {
            idx: query.atom_variables(idx) for idx in self._indices
        }
        vertices: set[Variable] = set()
        for edge in self._edges.values():
            vertices |= edge
        self._vertices = frozenset(vertices)

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #
    @property
    def query(self) -> ConjunctiveQuery:
        """The underlying query."""
        return self._query

    @property
    def atom_indices(self) -> tuple[int, ...]:
        """The atom indices this hypergraph covers."""
        return self._indices

    @property
    def vertices(self) -> frozenset[Variable]:
        """The variables (hypergraph vertices)."""
        return self._vertices

    def edge(self, atom_index: int) -> frozenset[Variable]:
        """The variable set (hyperedge) of ``atom_index``."""
        try:
            return self._edges[atom_index]
        except KeyError:
            raise QueryError(f"atom {atom_index} is not part of this hypergraph") from None

    def atoms_containing(self, variable: Variable) -> tuple[int, ...]:
        """Indices of atoms whose hyperedge contains ``variable``."""
        return tuple(idx for idx, edge in self._edges.items() if variable in edge)

    # ------------------------------------------------------------------ #
    # Connectivity
    # ------------------------------------------------------------------ #
    def connected_components(self) -> list[tuple[int, ...]]:
        """Atom-index components connected through shared variables."""
        remaining = set(self._indices)
        components: list[tuple[int, ...]] = []
        while remaining:
            start = min(remaining)
            component = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                current_vars = self._edges[current]
                for other in list(remaining - component):
                    if self._edges[other] & current_vars:
                        component.add(other)
                        frontier.append(other)
            remaining -= component
            components.append(tuple(sorted(component)))
        return components

    @property
    def is_connected(self) -> bool:
        """Whether all atoms form a single connected component."""
        return len(self.connected_components()) <= 1

    def connected_order(self, seeds: Sequence[Variable] = ()) -> list[int]:
        """An atom ordering in which each atom (when possible) shares a variable
        with a previously placed atom or with ``seeds``.

        Used by the backtracking join planner and by elastic sensitivity's
        traversal of the remaining atoms.  Disconnected atoms are appended in
        index order after their component is exhausted.
        """
        seen_vars: set[Variable] = set(seeds)
        remaining = list(self._indices)
        order: list[int] = []
        while remaining:
            # Prefer atoms sharing the most already-seen variables.
            best = None
            best_key = None
            for idx in remaining:
                shared = len(self._edges[idx] & seen_vars)
                key = (-shared, idx)
                if best_key is None or key < best_key:
                    best_key = key
                    best = idx
            assert best is not None
            order.append(best)
            remaining.remove(best)
            seen_vars |= self._edges[best]
        return order

    # ------------------------------------------------------------------ #
    # GYO reduction / acyclicity / join trees
    # ------------------------------------------------------------------ #
    def gyo_reduction(self) -> tuple[bool, list[tuple[int, int | None]]]:
        """Run the GYO ear-removal procedure.

        Returns
        -------
        (acyclic, ears):
            ``acyclic`` is ``True`` iff the query is α-acyclic; ``ears`` is
            the removal sequence as ``(ear_atom, witness_atom_or_None)``
            pairs (the witness is the atom the ear was absorbed into).
        """
        active: dict[int, set[Variable]] = {idx: set(edge) for idx, edge in self._edges.items()}
        ears: list[tuple[int, int | None]] = []
        changed = True
        while changed and len(active) > 1:
            changed = False
            for idx in list(active):
                others = [o for o in active if o != idx]
                # Variables of idx appearing in some other active atom.
                shared = {
                    v for v in active[idx] if any(v in active[o] for o in others)
                }
                witness = None
                for o in others:
                    if shared <= active[o]:
                        witness = o
                        break
                if witness is not None or not shared:
                    ears.append((idx, witness))
                    del active[idx]
                    changed = True
                    break
        acyclic = len(active) <= 1
        if acyclic and active:
            ears.append((next(iter(active)), None))
        return acyclic, ears

    @property
    def is_acyclic(self) -> bool:
        """Whether the query (restricted to these atoms) is α-acyclic."""
        acyclic, _ = self.gyo_reduction()
        return acyclic

    def join_tree(self) -> JoinTreeNode:
        """A join tree for an α-acyclic query.

        Raises
        ------
        QueryError
            If the query is cyclic (no join tree exists).
        """
        acyclic, ears = self.gyo_reduction()
        if not acyclic:
            raise QueryError("query is cyclic; no join tree exists")
        nodes: dict[int, JoinTreeNode] = {}
        root_index = ears[-1][0]
        for idx, _ in ears:
            nodes[idx] = JoinTreeNode(atom_index=idx, children=[])
        # Attach each ear to its witness; ears removed later are closer to the root.
        for idx, witness in ears[:-1]:
            parent = witness if witness is not None else root_index
            nodes[parent].children.append(nodes[idx])
        return nodes[root_index]
