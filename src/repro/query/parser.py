"""A small datalog-style text syntax for conjunctive queries.

The syntax is deliberately tiny but convenient for examples, tests and the
CLI::

    # Full CQ (no head): count all triangles
    Edge(x1, x2), Edge(x2, x3), Edge(x1, x3), x1 != x2, x1 != x3, x2 != x3

    # Non-full CQ with an explicit head (projection)
    Q(x1) :- R1(x1, x2), R2(x2)

    # Constants and comparisons
    Q(*) :- Orders(o, c, d), Lineitem(o, p, qty), qty >= 5, d != 0

Grammar (informal)::

    query      := [ head ":-" ] body
    head       := NAME "(" ( "*" | varlist? ) ")"
    body       := item ("," item)*
    item       := atom | predicate
    atom       := NAME "(" term ("," term)* ")"
    predicate  := term OP term          with OP in  != < <= > >=
    term       := NAME | NUMBER | STRING

Identifiers starting with a letter are variables inside atoms/predicates
(relation names are recognised positionally, i.e. ``NAME (`` starts an atom).
Numbers and quoted strings are constants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.exceptions import QueryError
from repro.query.atoms import Atom, Constant, Term, Variable
from repro.query.cq import ConjunctiveQuery
from repro.query.predicates import (
    ComparisonPredicate,
    InequalityPredicate,
    Predicate,
)

__all__ = ["parse_query"]


_TOKEN_SPEC = [
    ("ARROW", r":-"),
    ("OP", r"!=|<=|>=|<|>"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("STAR", r"\*"),
    ("NUMBER", r"-?\d+"),
    ("STRING", r"'[^']*'|\"[^\"]*\""),
    ("NAME", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("WS", r"\s+"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: Sequence[_Token], text: str):
        self._tokens = list(tokens)
        self._text = text
        self._pos = 0

    # -------------------------- token helpers -------------------------- #
    def _peek(self, offset: int = 0) -> _Token | None:
        idx = self._pos + offset
        if idx < len(self._tokens):
            return self._tokens[idx]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError(f"unexpected end of query: {self._text!r}")
        self._pos += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise QueryError(
                f"expected {kind} but found {token.text!r} at position {token.position}"
            )
        return token

    def _at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # -------------------------- grammar rules --------------------------- #
    def parse(self) -> ConjunctiveQuery:
        head_name, head_vars = self._maybe_head()
        atoms, predicates = self._body()
        if not atoms:
            raise QueryError("a query must contain at least one relational atom")
        return ConjunctiveQuery(
            atoms,
            predicates,
            output_variables=head_vars,
            name=head_name,
        )

    def _maybe_head(self) -> tuple[str | None, list[Variable] | None]:
        """Parse ``NAME ( ... ) :-`` if present; return (name, projection or None)."""
        # Look ahead for an ARROW token; if none, there is no head.
        has_arrow = any(t.kind == "ARROW" for t in self._tokens)
        if not has_arrow:
            return None, None
        name_token = self._expect("NAME")
        self._expect("LPAREN")
        head_vars: list[Variable] | None = []
        token = self._peek()
        if token is not None and token.kind == "STAR":
            self._next()
            head_vars = None  # Q(*) means full query.
        else:
            while token is not None and token.kind != "RPAREN":
                var_token = self._expect("NAME")
                assert head_vars is not None
                head_vars.append(Variable(var_token.text))
                token = self._peek()
                if token is not None and token.kind == "COMMA":
                    self._next()
                    token = self._peek()
        self._expect("RPAREN")
        self._expect("ARROW")
        if head_vars == []:
            # ``Q() :- ...`` — an empty head also means "just the count", i.e. full.
            head_vars = None
        return name_token.text, head_vars

    def _body(self) -> tuple[list[Atom], list[Predicate]]:
        atoms: list[Atom] = []
        predicates: list[Predicate] = []
        while not self._at_end():
            nxt = self._peek(1)
            if self._peek().kind == "NAME" and nxt is not None and nxt.kind == "LPAREN":
                atoms.append(self._atom())
            else:
                predicates.append(self._predicate())
            if not self._at_end():
                self._expect("COMMA")
        return atoms, predicates

    def _atom(self) -> Atom:
        name = self._expect("NAME").text
        self._expect("LPAREN")
        terms: list[Term] = [self._term()]
        while self._peek() is not None and self._peek().kind == "COMMA":
            self._next()
            terms.append(self._term())
        self._expect("RPAREN")
        return Atom(name, terms)

    def _term(self) -> Term:
        token = self._next()
        if token.kind == "NAME":
            return Variable(token.text)
        if token.kind == "NUMBER":
            return Constant(int(token.text))
        if token.kind == "STRING":
            return Constant(token.text[1:-1])
        raise QueryError(f"expected a term but found {token.text!r} at {token.position}")

    def _predicate(self) -> Predicate:
        left = self._term()
        op = self._expect("OP").text
        right = self._term()
        if op == "!=":
            return InequalityPredicate(left, right)
        return ComparisonPredicate(left, op, right)


def parse_query(text: str, name: str | None = None) -> ConjunctiveQuery:
    """Parse ``text`` into a :class:`~repro.query.cq.ConjunctiveQuery`.

    Parameters
    ----------
    text:
        The query in the datalog-style syntax described in the module
        docstring.
    name:
        Optional display name overriding the head name.

    Raises
    ------
    QueryError
        On any lexical or syntactic error.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise QueryError("empty query text")
    query = _Parser(tokens, text).parse()
    if name is not None:
        return ConjunctiveQuery(
            query.atoms, query.predicates,
            None if query.is_full else query.output_variables,
            name=name,
        )
    return query
