"""Conjunctive-query model.

The classes in this subpackage represent the query language of the paper:
full and non-full conjunctive queries with self-joins and with predicate
selections (inequalities, comparisons, or arbitrary computable predicates).
"""

from repro.query.atoms import Atom, Constant, Term, Variable
from repro.query.predicates import (
    ComparisonPredicate,
    GenericPredicate,
    InequalityPredicate,
    Predicate,
)
from repro.query.cq import ConjunctiveQuery, SelfJoinBlock
from repro.query.parser import parse_query
from repro.query.hypergraph import QueryHypergraph
from repro.query.residual import ResidualQuery, residual_query

__all__ = [
    "Atom",
    "ComparisonPredicate",
    "ConjunctiveQuery",
    "Constant",
    "GenericPredicate",
    "InequalityPredicate",
    "Predicate",
    "QueryHypergraph",
    "ResidualQuery",
    "SelfJoinBlock",
    "Term",
    "Variable",
    "parse_query",
    "residual_query",
]
