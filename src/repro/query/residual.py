"""Residual queries and their boundaries (Sections 3.1, 5, 6 of the paper).

For a CQ ``q`` over atoms ``[n]`` and a subset ``E ⊆ [n]``, the *residual
query* ``q_E`` is the join of the atoms in ``E``.  Its *boundary* ``∂q_E`` is
the set of variables shared between atoms inside and outside ``E``; the
residual sensitivity is built from the maximum boundary multiplicities
``T_E(I)`` of these residual queries.

With predicates (Section 5) the boundary splits into

* ``∂q1_E`` — boundary variables realised by atoms of ``E`` (they range over
  the active domain of the residual join), and
* ``∂q2_E`` — variables that occur in atoms *outside* ``E`` and in some
  predicate together with residual variables, but not in ``∂q1_E`` (they
  range, in principle, over the whole attribute domain).

With a projection (Section 6), ``o_E = o ∩ var(q_E)`` is the part of the
output variables realised inside ``E`` and ``T_E`` counts *distinct*
projections instead of raw join tuples.

This module contains only the *structural* computation; the numeric
evaluation of ``T_E(I)`` lives in :mod:`repro.engine.aggregates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.exceptions import QueryError
from repro.query.atoms import Variable
from repro.query.cq import ConjunctiveQuery
from repro.query.predicates import Predicate

__all__ = ["ResidualQuery", "residual_query", "all_subsets_of_block"]


@dataclass(frozen=True)
class ResidualQuery:
    """The structural description of a residual query ``q_E``.

    Attributes
    ----------
    parent:
        The query the residual was taken from.
    atom_indices:
        The subset ``E`` of atom indices (frozen, possibly empty).
    boundary:
        The full boundary ``∂q_E = ∂q1_E ∪ ∂q2_E``.
    boundary_relational:
        ``∂q1_E``: boundary variables occurring in some atom of ``E`` *and*
        some atom outside ``E``.
    boundary_predicate_only:
        ``∂q2_E``: variables occurring in atoms outside ``E`` and linked to
        the residual only through predicates.  Empty for predicate-free
        queries.
    output_variables:
        ``o_E = o ∩ var(q_E)`` — relevant only for non-full parents.
    predicates:
        The parent predicates whose variables are entirely contained in
        ``var(q_E)``; these are the predicates that the Corollary 5.1 /
        Section 5.2 evaluation applies inside the residual.
    dropped_predicates:
        Parent predicates that mention at least one variable of ``E``'s atoms
        but are not entirely contained in ``var(q_E)``; inequality-only
        dropped predicates are harmless (Corollary 5.1), comparison or
        generic dropped predicates require the Section 5.1/5.2 treatment.
    """

    parent: ConjunctiveQuery
    atom_indices: frozenset[int]
    boundary: frozenset[Variable]
    boundary_relational: frozenset[Variable]
    boundary_predicate_only: frozenset[Variable]
    output_variables: tuple[Variable, ...]
    predicates: tuple[Predicate, ...]
    dropped_predicates: tuple[Predicate, ...]

    @property
    def is_empty(self) -> bool:
        """Whether ``E`` is the empty set (then ``T_E(I) = 1`` by convention)."""
        return not self.atom_indices

    @property
    def variables(self) -> frozenset[Variable]:
        """``var(q_E)``: variables of the atoms in ``E``."""
        return self.parent.variables_of(self.atom_indices)

    @property
    def internal_variables(self) -> frozenset[Variable]:
        """Variables of ``q_E`` that are *not* boundary variables."""
        return self.variables - self.boundary

    def as_query(self) -> ConjunctiveQuery:
        """The residual as a standalone :class:`ConjunctiveQuery`.

        The standalone query keeps only the applicable predicates; it is full
        (sensitivity evaluation handles projections separately through
        :attr:`output_variables`).
        """
        if self.is_empty:
            raise QueryError("the empty residual query has no standalone form")
        atoms = [self.parent.atoms[i] for i in sorted(self.atom_indices)]
        return ConjunctiveQuery(atoms, self.predicates)


def residual_query(query: ConjunctiveQuery, atom_indices: Iterable[int]) -> ResidualQuery:
    """Construct the :class:`ResidualQuery` for subset ``E = atom_indices`` of ``query``.

    Parameters
    ----------
    query:
        The parent conjunctive query.
    atom_indices:
        The subset ``E`` of atom indices (each in ``range(query.num_atoms)``).

    Returns
    -------
    ResidualQuery
        The structural description, including the ``∂q1``/``∂q2`` boundary
        split and the per-residual predicate classification.
    """
    indices = frozenset(atom_indices)
    for idx in indices:
        if idx < 0 or idx >= query.num_atoms:
            raise QueryError(
                f"atom index {idx} out of range (query has {query.num_atoms} atoms)"
            )

    inside_vars = query.variables_of(indices)
    outside_indices = frozenset(range(query.num_atoms)) - indices
    outside_vars = query.variables_of(outside_indices)

    # ∂q1: realised by atoms on both sides.
    boundary_relational = inside_vars & outside_vars

    # Predicate classification and ∂q2.
    applicable: list[Predicate] = []
    dropped: list[Predicate] = []
    predicate_only: set[Variable] = set()
    for pred in query.predicates:
        pvars = pred.variables
        if not indices:
            # The empty residual applies no predicates.
            continue
        if pvars and pvars <= inside_vars:
            applicable.append(pred)
        elif pvars & inside_vars:
            dropped.append(pred)
            # Variables of the predicate realised only outside E contribute
            # to ∂q2 (unless they are already relational boundary vars).
            predicate_only |= (pvars - inside_vars) - boundary_relational
        # Predicates entirely outside E are irrelevant for q_E.

    # Per the paper's definition, ∂q2 collects variables of atoms *in E* that
    # co-occur with predicates linking to the outside; symmetrically, when E
    # is the residual kept (the paper's \bar{E}), the roles swap.  We expose
    # the outside-realised predicate variables because that is what the
    # Section 5 algorithms need to range over the (augmented) domain.
    boundary_predicate_only = frozenset(predicate_only)
    boundary = frozenset(boundary_relational) | boundary_predicate_only

    output_variables = tuple(v for v in query.output_variables if v in inside_vars)

    return ResidualQuery(
        parent=query,
        atom_indices=indices,
        boundary=boundary,
        boundary_relational=frozenset(boundary_relational),
        boundary_predicate_only=boundary_predicate_only,
        output_variables=output_variables,
        predicates=tuple(applicable),
        dropped_predicates=tuple(dropped),
    )


def all_subsets_of_block(block_indices: Iterable[int]) -> list[frozenset[int]]:
    """All non-empty subsets of a self-join block's atom indices.

    The residual-sensitivity formulas sum over ``E ⊆ D_i, E != ∅``; this
    helper enumerates those subsets deterministically (by increasing size,
    then lexicographically), which keeps reports and tests stable.
    """
    indices = sorted(set(block_indices))
    subsets: list[frozenset[int]] = []
    for mask in range(1, 1 << len(indices)):
        subsets.append(frozenset(indices[i] for i in range(len(indices)) if mask >> i & 1))
    subsets.sort(key=lambda s: (len(s), tuple(sorted(s))))
    return subsets
