"""Terms and atoms of conjunctive queries.

An atom ``R(x1, x2, 5)`` names a relation and lists *terms*, each of which is
either a :class:`Variable` or a :class:`Constant`.  Following the paper we
allow constants in atoms (they are handled by a linear-time selection during
evaluation) but most of the sensitivity machinery works with variable-only
atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.exceptions import QueryError

__all__ = ["Variable", "Constant", "Term", "Atom"]


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise QueryError(f"variable name must be a non-empty string, got {self.name!r}")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant term appearing in an atom or predicate."""

    value: object

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


#: A term is either a variable or a constant.
Term = Union[Variable, Constant]


@dataclass(frozen=True)
class Atom:
    """A single atom ``R(t1, ..., tk)`` of a conjunctive query.

    Parameters
    ----------
    relation:
        The *physical* relation name.  Two atoms over the same relation name
        form a self-join; the paper's logical relations ``I_i(x_i)`` are the
        per-atom renamings of the shared physical instance.
    terms:
        The terms, one per attribute of the relation, in schema order.
    """

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms):
        if not relation or not isinstance(relation, str):
            raise QueryError(f"atom relation name must be a non-empty string, got {relation!r}")
        converted: list[Term] = []
        for term in terms:
            if isinstance(term, (Variable, Constant)):
                converted.append(term)
            elif isinstance(term, str):
                converted.append(Variable(term))
            else:
                converted.append(Constant(term))
        if not converted:
            raise QueryError(f"atom over {relation!r} must have at least one term")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(converted))

    @property
    def arity(self) -> int:
        """Number of terms."""
        return len(self.terms)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """The variables of the atom, in term order, without duplicates."""
        seen: dict[Variable, None] = {}
        for term in self.terms:
            if isinstance(term, Variable):
                seen.setdefault(term)
        return tuple(seen)

    @property
    def variable_set(self) -> frozenset[Variable]:
        """The set of variables of the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    @property
    def has_constants(self) -> bool:
        """Whether any term is a constant."""
        return any(isinstance(t, Constant) for t in self.terms)

    def positions_of(self, variable: Variable) -> tuple[int, ...]:
        """The term positions at which ``variable`` occurs."""
        return tuple(i for i, t in enumerate(self.terms) if t == variable)

    def rename(self, mapping: dict[Variable, Variable]) -> "Atom":
        """A copy of the atom with variables renamed according to ``mapping``."""
        new_terms = [
            mapping.get(t, t) if isinstance(t, Variable) else t for t in self.terms
        ]
        return Atom(self.relation, new_terms)

    def __repr__(self) -> str:
        inner = ", ".join(
            t.name if isinstance(t, Variable) else repr(t.value) for t in self.terms
        )
        return f"{self.relation}({inner})"
