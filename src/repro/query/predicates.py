"""Predicates for CQs with selections (Section 5 of the paper).

A predicate ``P(y)`` is a computable boolean function over a tuple of
variables.  The library models three families:

* :class:`InequalityPredicate` — ``x != y`` (or ``x != c``), the predicates
  needed for graph-pattern counting queries;
* :class:`ComparisonPredicate` — ``x < y``, ``x <= y``, ``x > y``, ``x >= y``
  (and against constants), the predicates of spatiotemporal queries, which
  require the augmented active-domain treatment of Section 5.2; and
* :class:`GenericPredicate` — an arbitrary Python callable, supported by the
  general (exponential-time in the worst case) algorithm of Section 5.1 and
  by the exact enumeration engine.

Every predicate can evaluate itself on a (partial) variable assignment; the
evaluation engines only apply a predicate once all of its variables are
bound.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.exceptions import QueryError
from repro.query.atoms import Constant, Term, Variable

__all__ = [
    "Predicate",
    "InequalityPredicate",
    "ComparisonPredicate",
    "GenericPredicate",
]


class Predicate:
    """Abstract base class for query predicates."""

    @property
    def variables(self) -> frozenset[Variable]:
        """The variables the predicate mentions."""
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[Variable, object]) -> bool:
        """Evaluate on a complete assignment of :attr:`variables`.

        Raises
        ------
        QueryError
            If some variable of the predicate is missing from ``assignment``.
        """
        raise NotImplementedError

    def is_bound(self, assignment: Mapping[Variable, object]) -> bool:
        """Whether every variable of the predicate is bound in ``assignment``."""
        return all(v in assignment for v in self.variables)

    @property
    def is_inequality(self) -> bool:
        """Whether this is a pure disequality (``!=``) predicate."""
        return False

    @property
    def is_comparison(self) -> bool:
        """Whether this is an order comparison (``<``, ``<=``, ``>``, ``>=``)."""
        return False


def _term_value(term: Term, assignment: Mapping[Variable, object]) -> object:
    if isinstance(term, Constant):
        return term.value
    try:
        return assignment[term]
    except KeyError:
        raise QueryError(f"variable {term!r} is not bound in the assignment") from None


def _as_term(value: object) -> Term:
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str):
        return Variable(value)
    return Constant(value)


@dataclass(frozen=True)
class InequalityPredicate(Predicate):
    """The disequality predicate ``left != right``.

    These are exactly the predicates used by the graph-pattern counting
    queries in the paper's experiments (all pairwise ``x_i != x_j``).
    """

    left: Term
    right: Term

    def __init__(self, left, right):
        object.__setattr__(self, "left", _as_term(left))
        object.__setattr__(self, "right", _as_term(right))
        if self.left == self.right:
            raise QueryError(f"inequality predicate {self!r} is unsatisfiable")

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Variable))

    def evaluate(self, assignment: Mapping[Variable, object]) -> bool:
        return _term_value(self.left, assignment) != _term_value(self.right, assignment)

    @property
    def is_inequality(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.left!r} != {self.right!r}"


_COMPARISON_OPS: dict[str, Callable[[object, object], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class ComparisonPredicate(Predicate):
    """An order comparison ``left OP right`` with ``OP`` in ``<, <=, >, >=``."""

    left: Term
    op: str
    right: Term

    def __init__(self, left, op: str, right):
        if op not in _COMPARISON_OPS:
            raise QueryError(f"unsupported comparison operator {op!r}")
        object.__setattr__(self, "left", _as_term(left))
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "right", _as_term(right))

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Variable))

    def evaluate(self, assignment: Mapping[Variable, object]) -> bool:
        return _COMPARISON_OPS[self.op](
            _term_value(self.left, assignment), _term_value(self.right, assignment)
        )

    @property
    def is_comparison(self) -> bool:
        return True

    @property
    def constants(self) -> tuple[object, ...]:
        """Constant operands (needed for the augmented domain ``Z*(q)``)."""
        return tuple(t.value for t in (self.left, self.right) if isinstance(t, Constant))

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True)
class GenericPredicate(Predicate):
    """An arbitrary computable predicate over a fixed tuple of variables.

    Parameters
    ----------
    func:
        A callable taking the variable values *in the order of* ``vars`` and
        returning a boolean.
    vars:
        The variables, in the order the callable expects them.
    name:
        An optional display name.
    """

    func: Callable[..., bool]
    vars: tuple[Variable, ...]
    name: str = "P"

    def __init__(self, func: Callable[..., bool], vars: Sequence[Variable | str], name: str = "P"):
        converted = tuple(Variable(v) if isinstance(v, str) else v for v in vars)
        if not converted:
            raise QueryError("a generic predicate must mention at least one variable")
        if len(set(converted)) != len(converted):
            raise QueryError("generic predicate variables must be distinct")
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "vars", converted)
        object.__setattr__(self, "name", name)

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset(self.vars)

    def evaluate(self, assignment: Mapping[Variable, object]) -> bool:
        values = []
        for var in self.vars:
            if var not in assignment:
                raise QueryError(f"variable {var!r} is not bound in the assignment")
            values.append(assignment[var])
        return bool(self.func(*values))

    def __repr__(self) -> str:
        inner = ", ".join(v.name for v in self.vars)
        return f"{self.name}({inner})"
