"""Conjunctive queries (full and non-full, with self-joins and predicates).

A :class:`ConjunctiveQuery` is the central query object of the library.  It
captures the paper's query class

    q := pi_o ( sigma_{P1 ∧ ... ∧ Pκ} ( R1(x1) ⋈ ... ⋈ Rn(xn) ) )

where the projection ``o`` is optional (``o = var(q)`` makes the query
*full*), the predicates are optional, and relation names may repeat
(self-joins).  The class also exposes the bookkeeping the residual
sensitivity machinery needs: the grouping of atom indices into *self-join
blocks* (the paper's ``D_i``), the private logical/physical relation sets
(``P_n`` / ``P_m``), and convenience constructors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.schema import DatabaseSchema
from repro.exceptions import QueryError
from repro.query.atoms import Atom, Constant, Variable
from repro.query.predicates import Predicate

__all__ = ["ConjunctiveQuery", "SelfJoinBlock"]


@dataclass(frozen=True)
class SelfJoinBlock:
    """A maximal group of atom indices referring to the same physical relation.

    Attributes
    ----------
    relation:
        The shared physical relation name.
    atom_indices:
        The indices (into :attr:`ConjunctiveQuery.atoms`) of the atoms in the
        block, in query order.  This is the paper's ``D_i``; its size is
        ``n_i``, the number of logical copies of the relation.
    """

    relation: str
    atom_indices: tuple[int, ...]

    @property
    def copies(self) -> int:
        """Number of logical copies ``n_i``."""
        return len(self.atom_indices)


class ConjunctiveQuery:
    """A conjunctive query with optional predicates and projection.

    Parameters
    ----------
    atoms:
        The relational atoms, in order.  Atom order is irrelevant
        semantically but fixes the indexing used throughout the library.
    predicates:
        Selection predicates applied to the join result.
    output_variables:
        The projection list ``o``.  ``None`` means the query is *full* (all
        variables are output); an explicit list makes the query non-full.
        Output variables must occur in some atom.
    name:
        Optional display name used in reports.
    """

    def __init__(
        self,
        atoms: Sequence[Atom],
        predicates: Sequence[Predicate] = (),
        output_variables: Sequence[Variable | str] | None = None,
        name: str | None = None,
    ):
        if not atoms:
            raise QueryError("a conjunctive query must have at least one atom")
        self._atoms = tuple(atoms)
        self._predicates = tuple(predicates)
        self._name = name

        all_vars: dict[Variable, None] = {}
        for atom in self._atoms:
            for var in atom.variables:
                all_vars.setdefault(var)
        self._variables = tuple(all_vars)
        var_set = frozenset(self._variables)

        for pred in self._predicates:
            missing = pred.variables - var_set
            if missing:
                raise QueryError(
                    f"predicate {pred!r} mentions variables not in the query: "
                    f"{sorted(v.name for v in missing)}"
                )

        if output_variables is None:
            self._output_variables: tuple[Variable, ...] | None = None
        else:
            converted = tuple(
                Variable(v) if isinstance(v, str) else v for v in output_variables
            )
            unknown = [v for v in converted if v not in var_set]
            if unknown:
                raise QueryError(
                    f"output variables not in any atom: {sorted(v.name for v in unknown)}"
                )
            if len(set(converted)) != len(converted):
                raise QueryError("output variables must be distinct")
            self._output_variables = converted

        # Self-join blocks: group atom indices by relation name, preserving
        # the order of first appearance.  The paper assumes atoms of the same
        # relation are consecutive; we do not require that, the grouping is
        # by name regardless of position.
        blocks: dict[str, list[int]] = {}
        for idx, atom in enumerate(self._atoms):
            blocks.setdefault(atom.relation, []).append(idx)
        self._blocks = tuple(
            SelfJoinBlock(relation=rel, atom_indices=tuple(indices))
            for rel, indices in blocks.items()
        )

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #
    @property
    def atoms(self) -> tuple[Atom, ...]:
        """The atoms in query order."""
        return self._atoms

    @property
    def predicates(self) -> tuple[Predicate, ...]:
        """The selection predicates."""
        return self._predicates

    @property
    def name(self) -> str:
        """A display name (auto-generated if not provided)."""
        if self._name:
            return self._name
        return " ⋈ ".join(repr(a) for a in self._atoms)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """All variables, ordered by first appearance."""
        return self._variables

    @property
    def variable_set(self) -> frozenset[Variable]:
        """The set of all variables ``var(q)``."""
        return frozenset(self._variables)

    @property
    def output_variables(self) -> tuple[Variable, ...]:
        """The projection list ``o`` (all variables for a full query)."""
        if self._output_variables is None:
            return self._variables
        return self._output_variables

    @property
    def is_full(self) -> bool:
        """Whether the query is full (no projection, or projection onto all variables)."""
        if self._output_variables is None:
            return True
        return set(self._output_variables) == set(self._variables)

    @property
    def has_predicates(self) -> bool:
        """Whether the query carries any selection predicate."""
        return bool(self._predicates)

    @property
    def num_atoms(self) -> int:
        """The number of atoms ``n``."""
        return len(self._atoms)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Distinct physical relation names, in order of first appearance."""
        return tuple(block.relation for block in self._blocks)

    # ------------------------------------------------------------------ #
    # Self-joins and privacy bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def self_join_blocks(self) -> tuple[SelfJoinBlock, ...]:
        """The self-join blocks ``D_1, ..., D_m`` (one per physical relation)."""
        return self._blocks

    @property
    def is_self_join_free(self) -> bool:
        """Whether every physical relation is mentioned at most once."""
        return all(block.copies == 1 for block in self._blocks)

    def block_of_atom(self, atom_index: int) -> SelfJoinBlock:
        """The self-join block containing atom ``atom_index``."""
        self._check_atom_index(atom_index)
        relation = self._atoms[atom_index].relation
        for block in self._blocks:
            if block.relation == relation:
                return block
        raise QueryError(f"no block found for atom index {atom_index}")  # pragma: no cover

    def private_blocks(self, schema: DatabaseSchema) -> tuple[SelfJoinBlock, ...]:
        """The blocks over private relations (the paper's ``P_m``), per ``schema``."""
        self.validate_against_schema(schema)
        return tuple(b for b in self._blocks if schema.is_private(b.relation))

    def private_atom_indices(self, schema: DatabaseSchema) -> tuple[int, ...]:
        """Indices of atoms over private relations (the paper's ``P_n``)."""
        return tuple(
            idx for block in self.private_blocks(schema) for idx in block.atom_indices
        )

    # ------------------------------------------------------------------ #
    # Validation and derived queries
    # ------------------------------------------------------------------ #
    def validate_against_schema(self, schema: DatabaseSchema) -> None:
        """Check that every atom matches a relation of ``schema`` with the right arity."""
        for atom in self._atoms:
            if atom.relation not in schema:
                raise QueryError(f"query references unknown relation {atom.relation!r}")
            expected = schema.relation(atom.relation).arity
            if atom.arity != expected:
                raise QueryError(
                    f"atom {atom!r} has arity {atom.arity}, relation "
                    f"{atom.relation!r} expects {expected}"
                )

    def atom_variables(self, atom_index: int) -> frozenset[Variable]:
        """The variable set of atom ``atom_index``."""
        self._check_atom_index(atom_index)
        return self._atoms[atom_index].variable_set

    def variables_of(self, atom_indices: Iterable[int]) -> frozenset[Variable]:
        """The union of variable sets over ``atom_indices``."""
        result: set[Variable] = set()
        for idx in atom_indices:
            result |= self.atom_variables(idx)
        return frozenset(result)

    def with_predicates(self, predicates: Sequence[Predicate]) -> "ConjunctiveQuery":
        """A copy with additional predicates appended."""
        return ConjunctiveQuery(
            self._atoms,
            self._predicates + tuple(predicates),
            self._output_variables,
            name=self._name,
        )

    def with_projection(self, output_variables: Sequence[Variable | str]) -> "ConjunctiveQuery":
        """A copy projecting onto ``output_variables`` (making the query non-full)."""
        return ConjunctiveQuery(
            self._atoms, self._predicates, output_variables, name=self._name
        )

    def as_full(self) -> "ConjunctiveQuery":
        """A copy with the projection dropped (all variables output)."""
        return ConjunctiveQuery(self._atoms, self._predicates, None, name=self._name)

    def without_predicates(self) -> "ConjunctiveQuery":
        """A copy with all predicates dropped."""
        return ConjunctiveQuery(self._atoms, (), self._output_variables, name=self._name)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def _check_atom_index(self, atom_index: int) -> None:
        if atom_index < 0 or atom_index >= len(self._atoms):
            raise QueryError(
                f"atom index {atom_index} out of range (query has {len(self._atoms)} atoms)"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self._atoms == other._atoms
            and self._predicates == other._predicates
            and self._output_variables == other._output_variables
        )

    def __hash__(self) -> int:
        return hash((self._atoms, self._predicates, self._output_variables))

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self._atoms)
        if self._predicates:
            body += ", " + ", ".join(repr(p) for p in self._predicates)
        if self._output_variables is None:
            head_vars = ""
        else:
            head_vars = ", ".join(v.name for v in self._output_variables)
        return f"Q({head_vars}) :- {body}"
