"""repro — nearly instance-optimal differentially private conjunctive-query counting.

A from-scratch reproduction of *"A Nearly Instance-optimal Differentially
Private Mechanism for Conjunctive Queries"* (Wei Dong and Ke Yi, PODS 2022).

The package releases the result size of conjunctive queries — including
self-joins, inequality/comparison predicates and projections — under pure
ε-differential privacy, with noise calibrated to **residual sensitivity**,
the paper's polynomial-time, `O(1)`-neighborhood-optimal smooth upper bound
of smooth sensitivity.  Baselines (smooth sensitivity closed forms, elastic
sensitivity, AGM-based global sensitivity), the underlying relational/query
evaluation substrate, the graph-pattern workloads of the paper's evaluation
and the experiment harnesses regenerating its tables and figures are all
included.

Quickstart
----------
>>> from repro import PrivateCountingQuery, parse_query
>>> from repro.data import Database, DatabaseSchema
>>> schema = DatabaseSchema.from_arities({"R": 2, "S": 2})
>>> db = Database.from_rows(schema, R=[(1, 2), (1, 3)], S=[(2, 9), (3, 9)])
>>> query = parse_query("R(x, y), S(y, z)")
>>> release = PrivateCountingQuery(query, epsilon=1.0, rng=0).release(db)
>>> isinstance(release.noisy_count, float)
True
"""

from repro.data import Database, DatabaseSchema, Relation, RelationSchema
from repro.engine import count_query, evaluate_query
from repro.exceptions import (
    DatasetError,
    EvaluationError,
    ExperimentError,
    PrivacyError,
    QueryError,
    ReproError,
    SchemaError,
    SensitivityError,
    ServiceError,
)
from repro.mechanisms import (
    PrivacyAccountant,
    PrivateCountingQuery,
    SmoothSensitivityMechanism,
)
from repro.service import PrivateQueryService
from repro.query import Atom, ConjunctiveQuery, Variable, parse_query
from repro.sensitivity import (
    ElasticSensitivity,
    GlobalSensitivityBound,
    ResidualSensitivity,
    StarSmoothSensitivity,
    TriangleSmoothSensitivity,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Database",
    "DatabaseSchema",
    "DatasetError",
    "ElasticSensitivity",
    "EvaluationError",
    "ExperimentError",
    "GlobalSensitivityBound",
    "PrivacyAccountant",
    "PrivacyError",
    "PrivateCountingQuery",
    "PrivateQueryService",
    "QueryError",
    "Relation",
    "RelationSchema",
    "ReproError",
    "ResidualSensitivity",
    "SchemaError",
    "SensitivityError",
    "ServiceError",
    "SmoothSensitivityMechanism",
    "StarSmoothSensitivity",
    "TriangleSmoothSensitivity",
    "Variable",
    "count_query",
    "evaluate_query",
    "parse_query",
    "__version__",
]
