"""A small TPC-H-flavoured schema and generator.

The paper motivates DP join counting with SQL analytics over business data;
the classic playground for that is TPC-H.  This module provides a reduced
three-table slice of the TPC-H schema —

* ``Customer(custkey, nationkey, segment)``
* ``Orders(orderkey, custkey, priority)``
* ``Lineitem(orderkey, partkey, quantity)``

— together with a seeded generator producing skewed foreign-key
distributions (a few customers place many orders, a few orders have many
line items), which is exactly the regime where instance-specific sensitivity
beats worst-case calibration.  The ``private_sql_analytics`` example and
several tests build on it.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import Database
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.exceptions import DatasetError
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query

__all__ = [
    "TPCH_RELATIONS",
    "tpch_schema",
    "generate_tpch",
    "customer_order_lineitem_query",
    "customers_with_large_orders_query",
]

#: The relations of the reduced schema, with their attribute lists.
TPCH_RELATIONS: dict[str, tuple[str, ...]] = {
    "Customer": ("custkey", "nationkey", "segment"),
    "Orders": ("orderkey", "custkey", "priority"),
    "Lineitem": ("orderkey", "partkey", "quantity"),
}


def tpch_schema(private: tuple[str, ...] = ("Customer", "Orders", "Lineitem")) -> DatabaseSchema:
    """The reduced TPC-H schema; by default every table is private (tuple-DP)."""
    relations = [
        RelationSchema(name, list(attributes)) for name, attributes in TPCH_RELATIONS.items()
    ]
    return DatabaseSchema(relations, private=private)


def generate_tpch(
    num_customers: int = 50,
    orders_per_customer: float = 3.0,
    lineitems_per_order: float = 2.5,
    *,
    num_nations: int = 5,
    num_parts: int = 40,
    max_quantity: int = 50,
    skew: float = 1.1,
    seed: int = 0,
    private: tuple[str, ...] = ("Customer", "Orders", "Lineitem"),
) -> Database:
    """A seeded random instance of the reduced TPC-H schema.

    Foreign keys are drawn with Zipf-like skew, so some customers have many
    orders and some orders many line items — producing realistic join fan-out
    for the sensitivity experiments.
    """
    if num_customers < 1:
        raise DatasetError(f"need at least one customer, got {num_customers}")
    if orders_per_customer < 0 or lineitems_per_order < 0:
        raise DatasetError("per-entity rates must be non-negative")
    rng = np.random.default_rng(seed)
    database = Database(tpch_schema(private))

    customers = database.relation("Customer")
    for custkey in range(num_customers):
        nation = int(rng.integers(0, num_nations))
        segment = f"SEG{int(rng.integers(0, 5))}"
        customers.add((custkey, nation, segment))

    # Skewed foreign keys: rank-based Zipf weights over customers / orders.
    def _skewed_keys(count: int, universe: int) -> np.ndarray:
        ranks = np.arange(1, universe + 1, dtype=float)
        weights = ranks ** (-skew)
        return rng.choice(universe, size=count, p=weights / weights.sum())

    num_orders = max(1, int(round(num_customers * orders_per_customer)))
    orders = database.relation("Orders")
    order_custkeys = _skewed_keys(num_orders, num_customers)
    for orderkey in range(num_orders):
        priority = int(rng.integers(1, 6))
        orders.add((orderkey, int(order_custkeys[orderkey]), priority))

    num_lineitems = max(1, int(round(num_orders * lineitems_per_order)))
    lineitems = database.relation("Lineitem")
    lineitem_orderkeys = _skewed_keys(num_lineitems, num_orders)
    added = 0
    attempt = 0
    while added < num_lineitems and attempt < num_lineitems * 5:
        orderkey = int(lineitem_orderkeys[added % num_lineitems])
        partkey = int(rng.integers(0, num_parts))
        quantity = int(rng.integers(1, max_quantity + 1))
        if lineitems.add((orderkey, partkey, quantity)):
            added += 1
        attempt += 1
    return database


def customer_order_lineitem_query() -> ConjunctiveQuery:
    """The full three-way join count (customers × their orders × line items)."""
    return parse_query(
        "Customer(c, n, s), Orders(o, c, p), Lineitem(o, pk, q)",
        name="q_customer_order_lineitem",
    )


def customers_with_large_orders_query(min_quantity: int = 30) -> ConjunctiveQuery:
    """A non-full CQ: distinct customers having an order with a large line item.

    ``π_c ( Customer(c,n,s) ⋈ Orders(o,c,p) ⋈ Lineitem(o,pk,q) ⋈ q >= min_quantity )``
    """
    return parse_query(
        f"Q(c) :- Customer(c, n, s), Orders(o, c, p), Lineitem(o, pk, q), q >= {min_quantity}",
        name="q_customers_large_orders",
    )
