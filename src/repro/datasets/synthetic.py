"""Generic synthetic relational data.

Random database instances over arbitrary schemas, with optional Zipf-like
value skew.  These are used by

* the hypothesis-based property tests (small skewed instances exercise the
  smoothness and upper-bound invariants far better than uniform data),
* the scaling ablation (instances of growing size), and
* the examples that need multi-relation data without the TPC-H scaffolding.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.data.database import Database
from repro.data.schema import DatabaseSchema
from repro.exceptions import DatasetError

__all__ = ["random_database", "skewed_values"]


def skewed_values(
    count: int,
    domain_size: int,
    rng: np.random.Generator,
    *,
    skew: float = 1.0,
) -> np.ndarray:
    """``count`` values in ``[0, domain_size)`` with a Zipf-like distribution.

    ``skew = 0`` is uniform; larger values concentrate mass on small values,
    producing the heavy hitters that drive join sensitivities.
    """
    if count < 0:
        raise DatasetError(f"count must be non-negative, got {count}")
    if domain_size < 1:
        raise DatasetError(f"domain_size must be positive, got {domain_size}")
    if skew < 0:
        raise DatasetError(f"skew must be non-negative, got {skew}")
    ranks = np.arange(1, domain_size + 1, dtype=float)
    weights = ranks ** (-skew) if skew > 0 else np.ones_like(ranks)
    probabilities = weights / weights.sum()
    return rng.choice(domain_size, size=count, p=probabilities)


def random_database(
    schema: DatabaseSchema,
    sizes: Mapping[str, int],
    *,
    domain_size: int = 100,
    skew: float = 1.0,
    seed: int | np.random.Generator = 0,
) -> Database:
    """A random instance of ``schema`` with the requested relation sizes.

    Parameters
    ----------
    schema:
        The database schema.
    sizes:
        Target number of tuples per relation (set semantics may deduplicate a
        few tuples when the domain is small; the generator retries a bounded
        number of times to hit the target).
    domain_size:
        Values are drawn from ``[0, domain_size)`` for every attribute.
    skew:
        Zipf-like skew of the value distribution (0 = uniform).
    seed:
        Seed or numpy Generator.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    database = Database(schema)
    for relation_schema in schema:
        target = sizes.get(relation_schema.name, 0)
        if target < 0:
            raise DatasetError(f"negative size for relation {relation_schema.name!r}")
        relation = database.relation(relation_schema.name)
        attempts = 0
        while len(relation) < target and attempts < 20:
            missing = target - len(relation)
            columns: list[np.ndarray] = [
                skewed_values(missing, domain_size, rng, skew=skew)
                for _ in range(relation_schema.arity)
            ]
            for row in zip(*columns):
                relation.add(tuple(int(v) for v in row))
                if len(relation) >= target:
                    break
            attempts += 1
    return database


def two_table_schema(private: Sequence[str] = ("R", "S")) -> DatabaseSchema:
    """A tiny two-relation schema ``R(a, b) ⋈ S(b, c)`` used across the tests."""
    return DatabaseSchema.from_arities({"R": 2, "S": 2}, private=private)
