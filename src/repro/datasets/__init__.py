"""Datasets: SNAP surrogates, synthetic relational data and a TPC-H-style schema.

The paper's experiments use five SNAP collaboration graphs that are not
available offline; :mod:`repro.datasets.snap_surrogates` generates seeded
surrogates with the same relative sizes and similar structure (see DESIGN.md
for the substitution rationale).  :mod:`repro.datasets.synthetic` provides
generic random relational instances for property tests and scaling studies,
and :mod:`repro.datasets.tpch` a small TPC-H-flavoured schema used by the
relational (non-graph) examples.
"""

from repro.datasets.snap_surrogates import (
    SNAP_DATASETS,
    SnapDatasetSpec,
    available_datasets,
    default_scale,
    surrogate_database,
    surrogate_graph,
)
from repro.datasets.synthetic import random_database
from repro.datasets.tpch import TPCH_RELATIONS, generate_tpch, tpch_schema

__all__ = [
    "SNAP_DATASETS",
    "SnapDatasetSpec",
    "TPCH_RELATIONS",
    "available_datasets",
    "default_scale",
    "generate_tpch",
    "random_database",
    "surrogate_database",
    "surrogate_graph",
    "tpch_schema",
]
