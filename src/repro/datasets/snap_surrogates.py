"""Surrogates for the SNAP collaboration graphs used in the paper's evaluation.

The paper evaluates on five arXiv co-authorship networks from SNAP
(ca-CondMat, ca-AstroPh, ca-HepPh, ca-HepTh, ca-GrQc).  They are not
available in this offline environment, so this module generates *surrogates*
that preserve the features the experiments depend on:

* the **relative sizes** of the five datasets (node counts scaled by a common
  factor, average degree preserved),
* the heavy-tailed degree distribution and strong clustering of co-authorship
  graphs (Holme–Kim power-law-cluster generator), and
* the symmetric ``Edge(src, dst)`` storage convention.

The scale factor defaults to :data:`DEFAULT_SCALE` (4% of the original node
counts) so that the full Table 1 / Figure 3 harness runs in minutes in pure
Python; it can be overridden per call or globally through the
``REPRO_DATASET_SCALE`` environment variable.  Every surrogate is generated
from a fixed per-dataset seed, so results are reproducible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import networkx as nx

from repro.data.database import Database
from repro.exceptions import DatasetError
from repro.graphs.generators import collaboration_graph
from repro.graphs.loader import database_from_networkx

__all__ = [
    "SnapDatasetSpec",
    "SNAP_DATASETS",
    "DEFAULT_SCALE",
    "available_datasets",
    "default_scale",
    "surrogate_graph",
    "surrogate_database",
]

#: Default fraction of the original node counts used by the surrogates.
DEFAULT_SCALE = 0.025

#: Environment variable overriding :data:`DEFAULT_SCALE`.
SCALE_ENV_VAR = "REPRO_DATASET_SCALE"


@dataclass(frozen=True)
class SnapDatasetSpec:
    """Published statistics of one SNAP collaboration graph.

    Attributes
    ----------
    name:
        Short dataset name as used in the paper's tables.
    nodes:
        Number of vertices in the original graph.
    directed_edges:
        Number of directed edge tuples (both orientations) as reported in the
        paper's Section 7.1.
    seed:
        The fixed seed used when generating this dataset's surrogate.
    description:
        Human-readable provenance.
    """

    name: str
    nodes: int
    directed_edges: int
    seed: int
    description: str

    @property
    def average_degree(self) -> float:
        """Average undirected degree (= directed tuples per node)."""
        return self.directed_edges / self.nodes


#: The five datasets of the paper, with the statistics reported in Section 7.1.
SNAP_DATASETS: dict[str, SnapDatasetSpec] = {
    "CondMat": SnapDatasetSpec(
        "CondMat", 23133, 186878, seed=11, description="arXiv Condensed Matter co-authorship"
    ),
    "AstroPh": SnapDatasetSpec(
        "AstroPh", 18772, 396100, seed=13, description="arXiv Astro Physics co-authorship"
    ),
    "HepPh": SnapDatasetSpec(
        "HepPh", 12008, 236978, seed=17, description="arXiv High Energy Physics co-authorship"
    ),
    "HepTh": SnapDatasetSpec(
        "HepTh", 9877, 51946, seed=19, description="arXiv High Energy Physics Theory co-authorship"
    ),
    "GrQc": SnapDatasetSpec(
        "GrQc", 5242, 28980, seed=23, description="arXiv General Relativity co-authorship"
    ),
}


def available_datasets() -> list[str]:
    """Names of the surrogate datasets, in the order used by the paper's tables."""
    return list(SNAP_DATASETS)


def default_scale() -> float:
    """The scale factor: ``REPRO_DATASET_SCALE`` if set, else :data:`DEFAULT_SCALE`."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return DEFAULT_SCALE
    try:
        scale = float(raw)
    except ValueError as exc:
        raise DatasetError(f"invalid {SCALE_ENV_VAR}={raw!r}: not a number") from exc
    if not 0 < scale <= 1.0:
        raise DatasetError(f"{SCALE_ENV_VAR} must be in (0, 1], got {scale}")
    return scale


def _spec(name: str) -> SnapDatasetSpec:
    try:
        return SNAP_DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(SNAP_DATASETS)}"
        ) from None


def surrogate_graph(
    name: str,
    *,
    scale: float | None = None,
    seed: int | None = None,
) -> "nx.Graph":
    """A seeded surrogate of dataset ``name`` as an undirected networkx graph.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    scale:
        Fraction of the original node count (defaults to
        :func:`default_scale`).  The average degree of the original is
        preserved, capped at ``scaled_nodes - 1``.
    seed:
        Override the dataset's fixed seed (for robustness studies).
    """
    spec = _spec(name)
    scale = default_scale() if scale is None else scale
    if not 0 < scale <= 1.0:
        raise DatasetError(f"scale must be in (0, 1], got {scale}")
    num_nodes = max(30, int(round(spec.nodes * scale)))
    average_degree = min(spec.average_degree, num_nodes - 1)
    return collaboration_graph(
        num_nodes,
        average_degree,
        seed=spec.seed if seed is None else seed,
    )


def surrogate_database(
    name: str,
    *,
    scale: float | None = None,
    seed: int | None = None,
    relation: str = "Edge",
) -> Database:
    """The surrogate of dataset ``name`` as a symmetric ``Edge`` relation database."""
    graph = surrogate_graph(name, scale=scale, seed=seed)
    return database_from_networkx(graph, relation=relation)
