"""Empirical neighborhood-optimality ratios (quantifying Theorem 1.1).

Theorem 1.1 states that the RS-based mechanism is ``O(1)``-neighborhood
optimal, with a worst-case constant from Lemma 4.8 that is very loose
(``(4(n_P-1)/(βe^{1-β}))^{n_P-1}``).  This study measures how large the
ratio actually is on the benchmark instances:

    ratio = Err(M_RS, I) / neighborhood lower bound at radius n_P
          = (10·RS(I)/ε) / ( max_{E ⊆ P_n} T_{[n]-E}(I) / (2·sqrt(1+e^ε)) )

using the polynomially computable lower bound of Lemma 4.5.  Small ratios
(tens, not thousands) show that the mechanism is much closer to optimal in
practice than the worst-case constant suggests — the same observation the
paper makes by comparing RS against SS in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.database import Database
from repro.datasets.snap_surrogates import available_datasets, surrogate_database
from repro.experiments.reporting import format_number, render_table
from repro.experiments.table1 import benchmark_queries
from repro.sensitivity.lower_bounds import (
    lemma_4_5_lower_bound,
    mechanism_error_from_sensitivity,
    optimality_ratio,
)
from repro.sensitivity.residual import ResidualSensitivity

__all__ = ["OptimalityRow", "run_optimality_study", "format_optimality_study"]


@dataclass(frozen=True)
class OptimalityRow:
    """The optimality measurement for one (dataset, query) pair."""

    dataset: str
    query: str
    rs_value: float
    mechanism_error: float
    lower_bound: float
    lower_bound_radius: int
    ratio: float


def run_optimality_study(
    *,
    epsilon: float = 1.0,
    datasets: Sequence[str] = (),
    queries: Sequence[str] = (),
    scale: float | None = None,
    strategy: str = "eliminate",
    databases: dict[str, Database] | None = None,
) -> list[OptimalityRow]:
    """Compute the empirical optimality ratio for each (dataset, query) pair."""
    beta = epsilon / 10.0
    dataset_names = list(datasets) if datasets else available_datasets()
    all_queries = benchmark_queries()
    query_names = list(queries) if queries else list(all_queries)

    rows: list[OptimalityRow] = []
    for dataset_name in dataset_names:
        if databases is not None and dataset_name in databases:
            database = databases[dataset_name]
        else:
            database = surrogate_database(dataset_name, scale=scale)
        for query_name in query_names:
            query = all_queries[query_name]
            rs = ResidualSensitivity(query, beta=beta, strategy=strategy).compute(database)
            error = mechanism_error_from_sensitivity(rs, epsilon)
            bound = lemma_4_5_lower_bound(query, database, epsilon, strategy=strategy)
            rows.append(
                OptimalityRow(
                    dataset=dataset_name,
                    query=query_name,
                    rs_value=rs.value,
                    mechanism_error=error,
                    lower_bound=bound.value,
                    lower_bound_radius=bound.radius,
                    ratio=optimality_ratio(error, bound),
                )
            )
    return rows


def format_optimality_study(rows: Sequence[OptimalityRow]) -> str:
    """Render the optimality study as a table."""
    table_rows = [
        [
            row.dataset,
            row.query,
            format_number(row.rs_value, decimals=1),
            format_number(row.mechanism_error, decimals=1),
            format_number(row.lower_bound, decimals=1),
            format_number(row.lower_bound_radius),
            f"{row.ratio:.1f}×",
        ]
        for row in rows
    ]
    return render_table(
        ["dataset", "query", "RS", "Err(M_RS)", "lower bound", "radius", "ratio"],
        table_rows,
        title="Empirical neighborhood-optimality ratios of the RS mechanism",
    )
