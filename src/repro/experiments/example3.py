"""Example 3 (Section 4.4): elastic sensitivity is not worst-case optimal.

The paper exhibits, for the path-4 query

    q = Edge(x1,x2) ⋈ Edge(x2,x3) ⋈ Edge(x3,x4) ⋈ Edge(x4,x5),

an instance on which elastic sensitivity is ``Ω(N³)`` even though the
AGM-based global-sensitivity bound (the worst case over *all* instances of
size N) is only ``O(N²)``.  The instance consists of two "half stars": node 0
points to nodes ``1..N/2`` and nodes ``N/2+1..N`` all point to node ``N+1``;
every per-attribute maximum frequency is ``N/2`` while the join is actually
empty.

The harness sweeps N, computing elastic sensitivity, the AGM/GS bound and
residual sensitivity on each instance, demonstrating both the ES ≫ GS
separation and that RS stays near the (tiny) local sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.database import Database
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_number, render_table
from repro.graphs.loader import database_from_edges
from repro.graphs.patterns import k_path_query
from repro.sensitivity.elastic import ElasticSensitivity
from repro.sensitivity.global_sensitivity import GlobalSensitivityBound
from repro.sensitivity.residual import ResidualSensitivity

__all__ = ["Example3Row", "adversarial_path4_instance", "run_example3", "format_example3"]


def adversarial_path4_instance(n: int) -> Database:
    """The two-half-star instance of Example 3 with ``n`` edge tuples.

    Node 0 points to ``1..n/2``; nodes ``n/2+1..n`` point to node ``n+1``.
    Every single-attribute maximum frequency equals ``n/2`` while the path-4
    join is empty (the two stars are disconnected).
    """
    if n < 2 or n % 2 != 0:
        raise ExperimentError(f"n must be a positive even number, got {n}")
    half = n // 2
    edges = [(0, i) for i in range(1, half + 1)]
    edges += [(half + i, n + 1) for i in range(1, half + 1)]
    return database_from_edges(edges, symmetric=False)


@dataclass(frozen=True)
class Example3Row:
    """Measurements for one instance size ``N``."""

    n: int
    elastic_value: float
    elastic_ls0: float
    gs_bound: float
    gs_exponent: float
    residual_value: float

    @property
    def es_over_gs(self) -> float:
        """The separation the example demonstrates (grows linearly with N).

        Following the paper's Example 3, the comparison uses the elastic
        distance-0 bound ``L̂S^(0) = 4(N/2)³`` against the worst-case (AGM)
        bound ``O(N²)``; the smoothed ES value itself is also reported but on
        small instances its maximisation over ``k`` masks the polynomial
        separation.
        """
        if self.gs_bound == 0:
            return float("inf")
        return self.elastic_ls0 / self.gs_bound


def run_example3(sizes: Sequence[int] = (16, 32, 64, 128, 256)) -> list[Example3Row]:
    """Measure ES, the GS bound and RS on the adversarial instance for each size."""
    query = k_path_query(4, inequalities=False)
    rows: list[Example3Row] = []
    for n in sizes:
        database = adversarial_path4_instance(n)
        elastic = ElasticSensitivity(query, beta=0.1)
        elastic_result = elastic.compute(database)
        gs = GlobalSensitivityBound(query)
        gs_result = gs.compute(database)
        rs_result = ResidualSensitivity(query, beta=0.1, strategy="eliminate").compute(database)
        rows.append(
            Example3Row(
                n=n,
                elastic_value=elastic_result.value,
                elastic_ls0=elastic.ls_hat(database, 0),
                gs_bound=gs_result.value,
                gs_exponent=gs_result.detail("exponent"),
                residual_value=rs_result.value,
            )
        )
    return rows


def format_example3(rows: Sequence[Example3Row]) -> str:
    """Render the Example 3 sweep as a table."""
    table_rows = [
        [
            format_number(row.n),
            format_number(row.elastic_ls0),
            format_number(row.elastic_value),
            format_number(row.gs_bound),
            f"{row.gs_exponent:.1f}",
            format_number(row.residual_value, decimals=1),
            f"{row.es_over_gs:.2f}×",
        ]
        for row in rows
    ]
    return render_table(
        ["N", "ES LS^(0)", "ES", "GS (AGM)", "GS exponent", "RS", "ES LS^(0)/GS"],
        table_rows,
        title="Example 3 — elastic sensitivity vs the global-sensitivity bound (path-4)",
    )
