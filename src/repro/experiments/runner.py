"""Full experiment run: execute every harness and write the outputs to disk.

``run_all_experiments`` produces, inside an output directory,

* ``table1.txt`` / ``table1.csv`` — the Table 1 reproduction,
* ``figure3.txt`` / ``figure3.csv`` — the Figure 3 β-sweep series,
* ``example3.txt`` — the Example 3 (ES vs GS) sweep,
* ``nonfull.txt`` — the Section 6 projection study,
* ``optimality.txt`` — the neighborhood-optimality ratios, and
* ``scaling.txt`` — the RS scaling ablation,

and returns the collected in-memory results.  The CLI's ``run-all``
sub-command and EXPERIMENTS.md are generated from this entry point; the
per-experiment benchmark files under ``benchmarks/`` time the same harnesses
individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.experiments.example3 import format_example3, run_example3
from repro.experiments.figure3 import Figure3Config, format_figure3, run_figure3
from repro.experiments.nonfull import format_nonfull_study, run_nonfull_study
from repro.experiments.optimality import format_optimality_study, run_optimality_study
from repro.experiments.reporting import write_csv
from repro.experiments.scaling import format_scaling_study, run_scaling_study
from repro.experiments.table1 import Table1Config, format_table1, run_table1

__all__ = ["ExperimentOutputs", "run_all_experiments"]


@dataclass
class ExperimentOutputs:
    """In-memory results plus the paths of the files written."""

    table1: object
    figure3: object
    example3: object
    nonfull: object
    optimality: object
    scaling: object
    files: list[Path]


def run_all_experiments(
    output_dir: str | Path = "experiment_results",
    *,
    datasets: Sequence[str] = (),
    scale: float | None = None,
    beta: float = 0.1,
) -> ExperimentOutputs:
    """Run every experiment harness and write text/CSV reports to ``output_dir``."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    files: list[Path] = []

    table1 = run_table1(
        Table1Config(beta=beta, datasets=tuple(datasets), scale=scale)
    )
    table1_text = output_dir / "table1.txt"
    table1_text.write_text(format_table1(table1) + "\n")
    files.append(table1_text)
    files.append(
        write_csv(
            output_dir / "table1.csv",
            [
                "dataset",
                "query",
                "query_result",
                "rs_value",
                "rs_seconds",
                "es_value",
                "es_seconds",
                "ss_value",
                "ss_seconds",
            ],
            [
                [
                    cell.dataset,
                    cell.query,
                    cell.query_result,
                    cell.rs_value,
                    cell.rs_seconds,
                    cell.es_value,
                    cell.es_seconds,
                    cell.ss_value if cell.ss_value is not None else "",
                    cell.ss_seconds if cell.ss_seconds is not None else "",
                ]
                for cell in table1.cells
            ],
        )
    )

    figure3 = run_figure3(Figure3Config(datasets=tuple(datasets), scale=scale))
    figure3_text = output_dir / "figure3.txt"
    figure3_text.write_text(format_figure3(figure3) + "\n")
    files.append(figure3_text)
    files.append(
        write_csv(
            output_dir / "figure3.csv",
            ["dataset", "query", "beta", "query_result", "rs", "es", "ss"],
            [row for panel in figure3 for row in panel.as_rows()],
        )
    )

    example3 = run_example3()
    example3_text = output_dir / "example3.txt"
    example3_text.write_text(format_example3(example3) + "\n")
    files.append(example3_text)

    nonfull = run_nonfull_study()
    nonfull_text = output_dir / "nonfull.txt"
    nonfull_text.write_text(format_nonfull_study(nonfull) + "\n")
    files.append(nonfull_text)

    optimality = run_optimality_study(
        datasets=tuple(datasets), scale=scale, epsilon=beta * 10.0
    )
    optimality_text = output_dir / "optimality.txt"
    optimality_text.write_text(format_optimality_study(optimality) + "\n")
    files.append(optimality_text)

    scaling = run_scaling_study()
    scaling_text = output_dir / "scaling.txt"
    scaling_text.write_text(format_scaling_study(scaling) + "\n")
    files.append(scaling_text)

    return ExperimentOutputs(
        table1=table1,
        figure3=figure3,
        example3=example3,
        nonfull=nonfull,
        optimality=optimality,
        scaling=scaling,
        files=files,
    )
