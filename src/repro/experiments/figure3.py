"""Figure 3: sensitivity values as the smoothing parameter β varies.

The paper sweeps β from the high-privacy regime (β = 0.01, i.e. ε = 0.1) to
β = 1 (ε = 10) and plots SS, RS and ES together with the true query result
for every (dataset, query) panel.  The observation is that the measures are
insensitive to β except for very small β, where all of them grow.

The harness reuses one round of residual-multiplicity evaluation per panel
(the ``T_F`` values do not depend on β) and one max-frequency pass for ES, so
sweeping many β values is cheap; only the smoothing maximisation is repeated.
The output is a list of series per panel, which the benchmark prints and
writes to CSV for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.database import Database
from repro.datasets.snap_surrogates import available_datasets, surrogate_database
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_number, render_table
from repro.experiments.table1 import benchmark_queries
from repro.graphs.statistics import pattern_count
from repro.sensitivity.elastic import ElasticSensitivity
from repro.sensitivity.residual import ResidualSensitivity
from repro.sensitivity.smooth_star import StarSmoothSensitivity
from repro.sensitivity.smooth_triangle import TriangleSmoothSensitivity

__all__ = ["Figure3Config", "Figure3Panel", "run_figure3", "format_figure3"]


def default_betas() -> tuple[float, ...]:
    """The β grid of the sweep: nine log-spaced values from 0.01 to 1.0."""
    return tuple(float(b) for b in np.logspace(-2, 0, 9))


@dataclass(frozen=True)
class Figure3Config:
    """Configuration of the β sweep.

    Attributes
    ----------
    betas:
        The β values (defaults to :func:`default_betas`).
    datasets / queries:
        Subset selection (defaults: all five surrogates, all four queries).
    scale:
        Surrogate scale factor.
    strategy:
        Residual-multiplicity evaluation strategy.
    """

    betas: tuple[float, ...] = ()
    datasets: tuple[str, ...] = ()
    queries: tuple[str, ...] = ()
    scale: float | None = None
    strategy: str = "eliminate"


@dataclass
class Figure3Panel:
    """One panel of Figure 3: the β series for one (dataset, query) pair."""

    dataset: str
    query: str
    query_result: int
    betas: tuple[float, ...]
    rs_values: tuple[float, ...]
    es_values: tuple[float, ...]
    ss_values: tuple[float, ...] | None = None

    def as_rows(self) -> list[dict[str, object]]:
        """Flatten the panel into CSV-friendly rows."""
        rows = []
        for index, beta in enumerate(self.betas):
            rows.append(
                {
                    "dataset": self.dataset,
                    "query": self.query,
                    "beta": beta,
                    "query_result": self.query_result,
                    "rs": self.rs_values[index],
                    "es": self.es_values[index],
                    "ss": self.ss_values[index] if self.ss_values is not None else "",
                }
            )
        return rows


def run_figure3(
    config: Figure3Config | None = None,
    *,
    databases: dict[str, Database] | None = None,
) -> list[Figure3Panel]:
    """Run the β sweep and return one panel per (dataset, query) pair."""
    config = config or Figure3Config()
    betas = tuple(config.betas) if config.betas else default_betas()
    if not betas or any(b <= 0 for b in betas):
        raise ExperimentError(f"betas must be positive, got {betas}")
    dataset_names = list(config.datasets) if config.datasets else available_datasets()
    queries = benchmark_queries()
    query_names = list(config.queries) if config.queries else list(queries)
    unknown = [name for name in query_names if name not in queries]
    if unknown:
        raise ExperimentError(f"unknown query labels: {unknown}; known: {list(queries)}")

    panels: list[Figure3Panel] = []
    for dataset_name in dataset_names:
        if databases is not None and dataset_name in databases:
            database = databases[dataset_name]
        else:
            database = surrogate_database(dataset_name, scale=config.scale)
        for query_name in query_names:
            query = queries[query_name]
            query_result = pattern_count(database, query)

            # The residual multiplicities T_F are β-independent: evaluate once
            # (with any β) and re-run only the smoothing maximisation per β.
            probe = ResidualSensitivity(query, beta=betas[0], strategy=config.strategy)
            multiplicities = probe.multiplicities(database)
            rs_values = []
            for beta in betas:
                engine = ResidualSensitivity(query, beta=beta, strategy=config.strategy)
                rs_values.append(engine.compute(database, multiplicities).value)

            es_values = [
                ElasticSensitivity(query, beta=beta).compute(database).value for beta in betas
            ]

            ss_values: list[float] | None = None
            if query_name == "q_triangle":
                ss_values = [
                    TriangleSmoothSensitivity(beta=beta).compute(database).value
                    for beta in betas
                ]
            elif query_name == "q_3star":
                ss_values = [
                    StarSmoothSensitivity(3, beta=beta).compute(database).value
                    for beta in betas
                ]

            panels.append(
                Figure3Panel(
                    dataset=dataset_name,
                    query=query_name,
                    query_result=query_result,
                    betas=betas,
                    rs_values=tuple(rs_values),
                    es_values=tuple(es_values),
                    ss_values=tuple(ss_values) if ss_values is not None else None,
                )
            )
    return panels


def format_figure3(panels: Sequence[Figure3Panel]) -> str:
    """Render every panel as a small table of series (one row per measure)."""
    blocks = []
    for panel in panels:
        headers = ["series"] + [f"β={beta:.3g}" for beta in panel.betas]
        rows: list[list[str]] = []
        if panel.ss_values is not None:
            rows.append(["SS"] + [format_number(v, decimals=1) for v in panel.ss_values])
        rows.append(["RS"] + [format_number(v, decimals=1) for v in panel.rs_values])
        rows.append(["ES"] + [format_number(v, decimals=1) for v in panel.es_values])
        rows.append(["Query result"] + [format_number(panel.query_result)] * len(panel.betas))
        blocks.append(
            render_table(
                headers,
                rows,
                title=f"Figure 3 panel — {panel.dataset} / {panel.query}",
            )
        )
    return "\n\n".join(blocks)
