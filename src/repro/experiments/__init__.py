"""Experiment harnesses reproducing the paper's evaluation.

Each module regenerates one table, figure or example of the paper:

* :mod:`repro.experiments.table1` — Table 1 (sensitivity values and running
  times of SS/RS/ES on the four pattern queries over the five collaboration
  datasets, β = 0.1);
* :mod:`repro.experiments.figure3` — Figure 3 (the same sensitivities as β
  sweeps from the high-privacy to the low-privacy regime);
* :mod:`repro.experiments.example3` — Section 4.4's Example 3 (elastic
  sensitivity exceeding the global-sensitivity bound on the path-4
  adversarial instance);
* :mod:`repro.experiments.nonfull` — the Section 6 projection study and the
  Theorem 6.4 trade-off;
* :mod:`repro.experiments.optimality` — empirical neighborhood-optimality
  ratios (an extension quantifying Theorem 1.1 on real instances);
* :mod:`repro.experiments.scaling` — RS computation cost versus instance
  size (the poly(N) claim).

:mod:`repro.experiments.reporting` provides the shared text-table / CSV
formatting, and :mod:`repro.experiments.runner` orchestrates a full run.
"""

from repro.experiments.table1 import Table1Config, run_table1, format_table1
from repro.experiments.figure3 import Figure3Config, run_figure3, format_figure3
from repro.experiments.example3 import run_example3, format_example3
from repro.experiments.nonfull import run_nonfull_study, format_nonfull_study
from repro.experiments.optimality import run_optimality_study, format_optimality_study
from repro.experiments.scaling import run_scaling_study, format_scaling_study
from repro.experiments.runner import run_all_experiments

__all__ = [
    "Figure3Config",
    "Table1Config",
    "format_example3",
    "format_figure3",
    "format_nonfull_study",
    "format_optimality_study",
    "format_scaling_study",
    "format_table1",
    "run_all_experiments",
    "run_example3",
    "run_figure3",
    "run_nonfull_study",
    "run_optimality_study",
    "run_scaling_study",
    "run_table1",
]
