"""Table 1: sensitivity values and running times on the collaboration graphs.

For each benchmark query (``q△``, ``q3∗``, ``q□``, ``q2△``) and each
collaboration-graph surrogate, the harness records

* the exact query result (closed-form pattern count),
* the value and wall-clock time of residual sensitivity (RS),
* the value and wall-clock time of elastic sensitivity (ES),
* the value and wall-clock time of smooth sensitivity (SS), available —
  exactly as in the paper — only for the triangle and 3-star queries,
* the ratios RS/SS, SS-time/RS-time, ES/RS and RS-time/ES-time reported in
  the paper's comparison rows.

Absolute values shrink with the surrogate scale and absolute times depend on
this pure-Python implementation, but the qualitative reading of the table —
RS close to SS in value, ES orders of magnitude larger on q△/q□/q2△ and
essentially equal on q3∗, ES cheapest to compute — is scale-free (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.data.database import Database
from repro.datasets.snap_surrogates import available_datasets, surrogate_database
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_number, format_ratio, render_table
from repro.graphs.patterns import (
    k_star_query,
    rectangle_query,
    triangle_query,
    two_triangle_query,
)
from repro.graphs.statistics import pattern_count
from repro.query.cq import ConjunctiveQuery
from repro.sensitivity.elastic import ElasticSensitivity
from repro.sensitivity.residual import ResidualSensitivity
from repro.sensitivity.smooth_star import StarSmoothSensitivity
from repro.sensitivity.smooth_triangle import TriangleSmoothSensitivity

__all__ = ["Table1Config", "Table1Cell", "Table1Result", "run_table1", "format_table1"]


def benchmark_queries() -> dict[str, ConjunctiveQuery]:
    """The four pattern queries of the paper's evaluation, keyed by display label."""
    return {
        "q_triangle": triangle_query(),
        "q_3star": k_star_query(3),
        "q_rectangle": rectangle_query(),
        "q_2triangle": two_triangle_query(),
    }


def _smooth_engines(beta: float) -> dict[str, Callable[[Database], float]]:
    """Closed-form SS engines, available only for the queries the paper lists."""
    triangle = TriangleSmoothSensitivity(beta=beta)
    star = StarSmoothSensitivity(3, beta=beta)
    return {
        "q_triangle": lambda db: triangle.compute(db).value,
        "q_3star": lambda db: star.compute(db).value,
    }


@dataclass(frozen=True)
class Table1Config:
    """Configuration of a Table 1 run.

    Attributes
    ----------
    beta:
        Smoothing parameter (the paper's headline table uses 0.1, i.e. ε = 1).
    datasets:
        Dataset names (defaults to all five surrogates).
    queries:
        Query labels (defaults to all four benchmark queries).
    scale:
        Surrogate scale factor (``None`` = package default / environment).
    strategy:
        Evaluation strategy for the residual multiplicities.
    include_smooth:
        Whether to compute the SS baselines where available.
    """

    beta: float = 0.1
    datasets: tuple[str, ...] = ()
    queries: tuple[str, ...] = ()
    scale: float | None = None
    strategy: str = "eliminate"
    include_smooth: bool = True


@dataclass
class Table1Cell:
    """All measurements for one (dataset, query) pair."""

    dataset: str
    query: str
    query_result: int
    rs_value: float
    rs_seconds: float
    es_value: float
    es_seconds: float
    ss_value: float | None = None
    ss_seconds: float | None = None

    @property
    def rs_over_ss(self) -> float | None:
        """RS / SS (the paper reports ~1.0–2.0)."""
        if self.ss_value in (None, 0):
            return None
        return self.rs_value / self.ss_value

    @property
    def es_over_rs(self) -> float | None:
        """ES / RS (the paper reports 1× on q3∗ and 60×–900,000× elsewhere)."""
        if self.rs_value == 0:
            return None
        return self.es_value / self.rs_value


@dataclass
class Table1Result:
    """The full set of cells plus the configuration that produced them."""

    config: Table1Config
    cells: list[Table1Cell] = field(default_factory=list)

    def cell(self, dataset: str, query: str) -> Table1Cell:
        """Lookup a single cell (raises :class:`ExperimentError` if missing)."""
        for cell in self.cells:
            if cell.dataset == dataset and cell.query == query:
                return cell
        raise ExperimentError(f"no cell for dataset={dataset!r} query={query!r}")

    def queries(self) -> list[str]:
        """The distinct query labels, preserving run order."""
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.query)
        return list(seen)

    def datasets(self) -> list[str]:
        """The distinct dataset names, preserving run order."""
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.dataset)
        return list(seen)


def run_table1(
    config: Table1Config | None = None,
    *,
    databases: dict[str, Database] | None = None,
) -> Table1Result:
    """Run the Table 1 harness.

    Parameters
    ----------
    config:
        Run configuration (defaults to the paper's setting on all datasets
        and queries at the package's default surrogate scale).
    databases:
        Optional pre-built databases keyed by dataset name (used by the
        benchmark suite to avoid re-generating surrogates inside timed code,
        and by tests to substitute tiny graphs).
    """
    config = config or Table1Config()
    dataset_names = list(config.datasets) if config.datasets else available_datasets()
    queries = benchmark_queries()
    query_names = list(config.queries) if config.queries else list(queries)
    unknown = [name for name in query_names if name not in queries]
    if unknown:
        raise ExperimentError(f"unknown query labels: {unknown}; known: {list(queries)}")
    smooth_engines = _smooth_engines(config.beta) if config.include_smooth else {}

    result = Table1Result(config=config)
    for dataset_name in dataset_names:
        if databases is not None and dataset_name in databases:
            database = databases[dataset_name]
        else:
            database = surrogate_database(dataset_name, scale=config.scale)
        for query_name in query_names:
            query = queries[query_name]
            query_result = pattern_count(database, query)

            start = time.perf_counter()
            rs = ResidualSensitivity(
                query, beta=config.beta, strategy=config.strategy
            ).compute(database)
            rs_seconds = time.perf_counter() - start

            start = time.perf_counter()
            es = ElasticSensitivity(query, beta=config.beta).compute(database)
            es_seconds = time.perf_counter() - start

            ss_value = None
            ss_seconds = None
            if query_name in smooth_engines:
                start = time.perf_counter()
                ss_value = smooth_engines[query_name](database)
                ss_seconds = time.perf_counter() - start

            result.cells.append(
                Table1Cell(
                    dataset=dataset_name,
                    query=query_name,
                    query_result=query_result,
                    rs_value=rs.value,
                    rs_seconds=rs_seconds,
                    es_value=es.value,
                    es_seconds=es_seconds,
                    ss_value=ss_value,
                    ss_seconds=ss_seconds,
                )
            )
    return result


def format_table1(result: Table1Result) -> str:
    """Render the result the way the paper's Table 1 reads (one block per query)."""
    blocks: list[str] = []
    datasets = result.datasets()
    for query_name in result.queries():
        rows: list[list[str]] = []
        cells = [result.cell(dataset, query_name) for dataset in datasets]
        rows.append(["Query result"] + [format_number(c.query_result) for c in cells])
        if any(c.ss_value is not None for c in cells):
            rows.append(
                ["Smooth sensitivity (SS)"]
                + [format_number(c.ss_value, decimals=1) for c in cells]
            )
            rows.append(
                ["SS time (s)"] + [format_number(c.ss_seconds, decimals=3) for c in cells]
            )
        rows.append(
            ["Residual sensitivity (RS)"]
            + [format_number(c.rs_value, decimals=1) for c in cells]
        )
        rows.append(["RS time (s)"] + [format_number(c.rs_seconds, decimals=3) for c in cells])
        rows.append(
            ["Elastic sensitivity (ES)"]
            + [format_number(c.es_value, decimals=1) for c in cells]
        )
        rows.append(["ES time (s)"] + [format_number(c.es_seconds, decimals=3) for c in cells])
        if any(c.ss_value is not None for c in cells):
            rows.append(
                ["RS/SS"] + [format_ratio(c.rs_value, c.ss_value) for c in cells]
            )
        rows.append(["ES/RS"] + [format_ratio(c.es_value, c.rs_value) for c in cells])
        blocks.append(
            render_table(
                [query_name] + datasets,
                rows,
                title=f"Table 1 block — {query_name} (beta={result.config.beta})",
            )
        )
    return "\n\n".join(blocks)
