"""Shared reporting helpers: aligned text tables, ratios and CSV output.

The experiment harnesses produce plain Python data (lists of dictionaries /
dataclasses); this module renders them the way the paper's tables read —
values with thousands separators, ratios as ``"12.3×"`` — and writes CSV
files so the series behind the figures can be re-plotted elsewhere.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = ["format_number", "format_ratio", "render_table", "write_csv"]


def format_number(value: float | int | None, *, decimals: int = 0) -> str:
    """Human-readable number: thousands separators, optional decimals, '-' for None."""
    if value is None:
        return "-"
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    if decimals == 0:
        return f"{int(round(value)):,}"
    return f"{value:,.{decimals}f}"


def format_ratio(numerator: float | None, denominator: float | None) -> str:
    """A ratio rendered like the paper's Table 1 (``"475×"``, ``"1.01×"``)."""
    if numerator is None or denominator is None:
        return "-"
    if denominator == 0:
        return "inf×" if numerator > 0 else "1.00×"
    ratio = numerator / denominator
    if ratio >= 100:
        return f"{ratio:,.0f}×"
    if ratio >= 10:
        return f"{ratio:.1f}×"
    return f"{ratio:.2f}×"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table (right-aligned numeric-looking cells)."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _format_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            parts.append(cell.rjust(widths[index]) if index else cell.ljust(widths[index]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(_format_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append(_format_row(row))
    return "\n".join(lines)


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object] | Mapping[str, object]],
) -> Path:
    """Write rows (sequences or dicts keyed by header) to a CSV file; return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            if isinstance(row, Mapping):
                writer.writerow([row.get(h, "") for h in headers])
            else:
                writer.writerow(list(row))
    return path
