"""Scaling ablation: residual-sensitivity cost and value versus instance size.

Theorem 1.1 claims ``RS(I)`` is computable in ``poly(N)`` time; the concrete
complexity is ``O(N^{w_max})`` with ``w_max`` the maximum AJAR/FAQ width of
the residual queries (Section 3.5).  This study generates collaboration
graphs of growing size (constant average degree) and measures the wall-clock
time and value of residual sensitivity for a chosen query, confirming the
polynomial growth and providing a cost model for sizing real deployments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.reporting import format_number, render_table
from repro.graphs.generators import collaboration_graph
from repro.graphs.loader import database_from_networkx
from repro.graphs.patterns import triangle_query
from repro.query.cq import ConjunctiveQuery
from repro.sensitivity.residual import ResidualSensitivity

__all__ = ["ScalingRow", "run_scaling_study", "format_scaling_study"]


@dataclass(frozen=True)
class ScalingRow:
    """Measurement at one instance size."""

    num_nodes: int
    num_edge_tuples: int
    rs_value: float
    rs_seconds: float


def run_scaling_study(
    sizes: Sequence[int] = (100, 200, 400, 800),
    *,
    average_degree: float = 8.0,
    query: ConjunctiveQuery | None = None,
    beta: float = 0.1,
    seed: int = 5,
    strategy: str = "eliminate",
) -> list[ScalingRow]:
    """Measure RS value and computation time on graphs of growing size."""
    query = query or triangle_query()
    rows: list[ScalingRow] = []
    for size in sizes:
        graph = collaboration_graph(size, average_degree, seed=seed)
        database = database_from_networkx(graph)
        start = time.perf_counter()
        rs = ResidualSensitivity(query, beta=beta, strategy=strategy).compute(database)
        elapsed = time.perf_counter() - start
        rows.append(
            ScalingRow(
                num_nodes=size,
                num_edge_tuples=len(database.relation("Edge")),
                rs_value=rs.value,
                rs_seconds=elapsed,
            )
        )
    return rows


def format_scaling_study(rows: Sequence[ScalingRow]) -> str:
    """Render the scaling study as a table."""
    table_rows = [
        [
            format_number(row.num_nodes),
            format_number(row.num_edge_tuples),
            format_number(row.rs_value, decimals=1),
            format_number(row.rs_seconds, decimals=3),
        ]
        for row in rows
    ]
    return render_table(
        ["nodes", "edge tuples", "RS", "seconds"],
        table_rows,
        title="Scaling of residual-sensitivity computation (triangle query)",
    )
