"""Non-full CQs (Section 6): projection-aware residual sensitivity and Theorem 6.4.

Two things are demonstrated on the query

    q = π_{x1} ( R1(x1, x2) ⋈ R2(x2) ),     R1 private, R2 public:

1. **Projection-aware RS is much smaller.**  On an instance where every
   ``x1`` value joins with many ``x2`` values, the full-CQ residual
   sensitivity scales with the join fan-out while the projection-aware
   version (counting *distinct* ``x1`` per boundary) stays small — this is
   the utility gain of Section 6.

2. **The Theorem 6.4 trade-off.**  The proof constructs two instances:
   ``I`` with ``R1 = [N/r] × [r]`` and ``I'`` with ``R1 = [N] × {0}``
   (``R2 = [r]`` public in both).  Within the ``r``-neighborhood of ``I``
   the query answer is constantly ``N/r`` while near ``I'`` it is at most
   ``r``; any mechanism that is ``(r, c)``-neighborhood optimal must
   therefore have ``c·r² >= N``.  The harness evaluates both instances,
   reports the answer gap ``N/r - r`` and the implied lower bound on ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.database import Database
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_number, render_table
from repro.query.parser import parse_query
from repro.sensitivity.residual import ResidualSensitivity

__all__ = [
    "NonFullRow",
    "nonfull_schema",
    "projection_gain_instance",
    "projection_gain_schema",
    "theorem_6_4_instances",
    "run_nonfull_study",
    "format_nonfull_study",
]


def nonfull_schema() -> DatabaseSchema:
    """``R1(x1, x2)`` private, ``R2(x2)`` public — the Theorem 6.4 schema."""
    return DatabaseSchema(
        [RelationSchema("R1", ["a", "b"]), RelationSchema("R2", ["b"])],
        private=["R1"],
    )


def theorem_6_4_instances(n: int, r: int) -> tuple[Database, Database]:
    """The instance pair ``(I, I')`` from the proof of Theorem 6.4.

    ``I`` has ``R1 = [n/r] × [r]`` (every ``x1`` value joins through each of
    the ``r`` public values), ``I'`` has ``R1 = [n] × {0}`` (nothing joins).
    """
    if r <= 0 or n <= 0 or n % r != 0:
        raise ExperimentError(f"need r > 0 and r dividing n, got n={n}, r={r}")
    schema = nonfull_schema()
    instance = Database(schema)
    for x1 in range(n // r):
        for x2 in range(1, r + 1):
            instance.relation("R1").add((x1, x2))
    for x2 in range(1, r + 1):
        instance.relation("R2").add((x2,))

    other = Database(schema)
    for x1 in range(n):
        other.relation("R1").add((x1, 0))
    for x2 in range(1, r + 1):
        other.relation("R2").add((x2,))
    return instance, other


@dataclass(frozen=True)
class NonFullRow:
    """Measurements for one ``(n, r)`` configuration."""

    n: int
    r: int
    answer_dense: int
    answer_sparse: int
    rs_projected: float
    rs_full: float
    c_lower_bound: float

    @property
    def projection_gain(self) -> float:
        """How much smaller the projection-aware RS is than the full-CQ RS."""
        if self.rs_projected == 0:
            return float("inf")
        return self.rs_full / self.rs_projected


def projection_gain_schema() -> DatabaseSchema:
    """``R1(x1, x2)`` and ``R2(x2, x3)``, both private — the projection-gain study."""
    return DatabaseSchema(
        [RelationSchema("R1", ["a", "b"]), RelationSchema("R2", ["b", "c"])]
    )


def projection_gain_instance(num_entities: int, groups: int, fanout: int) -> Database:
    """An instance where the projection slashes the sensitivity.

    ``R1`` holds one tuple per entity, hashed into ``groups`` join keys;
    ``R2`` gives every join key ``fanout`` partners.  The *full* join count is
    ``num_entities · fanout`` and changes by ``fanout`` when one ``R1`` tuple
    changes, while the projected count ``π_{x1}`` is just ``num_entities`` and
    changes by at most one — the Section 6 situation where projection-aware
    residual sensitivity pays off.
    """
    if num_entities <= 0 or groups <= 0 or fanout <= 0:
        raise ExperimentError("num_entities, groups and fanout must be positive")
    database = Database(projection_gain_schema())
    for entity in range(num_entities):
        database.relation("R1").add((entity, entity % groups))
    for group in range(groups):
        for partner in range(fanout):
            database.relation("R2").add((group, partner))
    return database


def run_nonfull_study(
    configurations: Sequence[tuple[int, int]] = ((64, 4), (256, 8), (1024, 16)),
    *,
    beta: float = 0.1,
) -> list[NonFullRow]:
    """Evaluate the projection study for each ``(n, r)`` configuration.

    Each configuration contributes two things to a row: the Theorem 6.4
    instance pair (for the query answers and the ``c >= N/r²`` bound) and a
    projection-gain instance with ``r`` join groups and fan-out ``n`` (for the
    projected-vs-full residual sensitivities).
    """
    projected_query = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)", name="q_projected")
    full_query = parse_query("R1(x1, x2), R2(x2, x3)", name="q_full")
    rows: list[NonFullRow] = []
    for n, r in configurations:
        theorem_6_4_instances(n, r)  # validates the configuration
        gain_db = projection_gain_instance(num_entities=n, groups=r, fanout=n)
        rs_projected = ResidualSensitivity(projected_query, beta=beta).compute(gain_db).value
        rs_full = ResidualSensitivity(full_query, beta=beta).compute(gain_db).value
        answer_dense = n // r
        answer_sparse = 0
        # Theorem 6.4: c * r^2 >= N, i.e. any (r, c)-neighborhood optimal
        # mechanism must have c >= N / r^2.
        c_lower = n / (r * r)
        rows.append(
            NonFullRow(
                n=n,
                r=r,
                answer_dense=answer_dense,
                answer_sparse=answer_sparse,
                rs_projected=rs_projected,
                rs_full=rs_full,
                c_lower_bound=c_lower,
            )
        )
    return rows


def format_nonfull_study(rows: Sequence[NonFullRow]) -> str:
    """Render the non-full-CQ study as a table."""
    table_rows = [
        [
            format_number(row.n),
            format_number(row.r),
            format_number(row.answer_dense),
            format_number(row.rs_projected, decimals=1),
            format_number(row.rs_full, decimals=1),
            f"{row.projection_gain:.1f}×",
            format_number(row.c_lower_bound, decimals=1),
        ]
        for row in rows
    ]
    return render_table(
        ["N", "r", "|q(I)|", "RS (projected)", "RS (full CQ)", "gain", "c >= N/r^2"],
        table_rows,
        title="Section 6 — projection-aware residual sensitivity and the Theorem 6.4 trade-off",
    )
