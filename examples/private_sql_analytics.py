"""Private SQL-style analytics over a TPC-H-like warehouse.

The paper motivates DP conjunctive-query counting with SQL analytics: an
analyst wants aggregate joins over business tables without learning about
individual rows.  This example builds a small TPC-H-flavoured warehouse
(customers, orders, line items with skewed foreign keys), answers a workload
of counting queries — full joins, selective predicates and a projection —
under a single privacy budget, and reports how far each noisy answer is from
the truth relative to the mechanism's expected error.

Run with::

    python examples/private_sql_analytics.py
"""

from __future__ import annotations

from repro import PrivacyAccountant, PrivateCountingQuery, count_query, parse_query
from repro.datasets.tpch import generate_tpch
from repro.experiments.reporting import format_number, render_table


def build_workload():
    """The analyst's workload: four counting queries of increasing selectivity."""
    return {
        "orders per customer segment join": parse_query(
            "Customer(c, n, s), Orders(o, c, p)", name="customer_orders"
        ),
        "full customer-order-lineitem join": parse_query(
            "Customer(c, n, s), Orders(o, c, p), Lineitem(o, pk, q)",
            name="customer_order_lineitem",
        ),
        "large line items (q >= 30)": parse_query(
            "Orders(o, c, p), Lineitem(o, pk, q), q >= 30", name="large_lineitems"
        ),
        "distinct customers with urgent orders": parse_query(
            "Q(c) :- Customer(c, n, s), Orders(o, c, p), p <= 2", name="urgent_customers"
        ),
    }


def main() -> None:
    warehouse = generate_tpch(
        num_customers=60, orders_per_customer=3.0, lineitems_per_order=2.5, seed=7
    )
    for name in ("Customer", "Orders", "Lineitem"):
        print(f"{name:9s}: {len(warehouse.relation(name))} tuples")

    per_query_epsilon = 0.5
    workload = build_workload()
    accountant = PrivacyAccountant(total_budget=len(workload) * per_query_epsilon)

    rows = []
    for label, query in workload.items():
        true_count = count_query(query, warehouse)
        releaser = PrivateCountingQuery(query, epsilon=per_query_epsilon, rng=11)
        release = accountant.run(
            per_query_epsilon,
            lambda releaser=releaser: releaser.release(warehouse),
            label=label,
        )
        absolute_error = abs(release.noisy_count - true_count)
        rows.append(
            [
                label,
                format_number(true_count),
                format_number(release.noisy_count, decimals=1),
                format_number(release.expected_error, decimals=1),
                format_number(absolute_error, decimals=1),
            ]
        )

    print()
    print(
        render_table(
            ["query", "true", "noisy", "expected error", "|error|"],
            rows,
            title=f"DP analytics workload (epsilon = {per_query_epsilon} per query)",
        )
    )
    print(f"\nprivacy budget spent: {accountant.spent:.2f} of {accountant.total_budget:.2f}")
    print(
        "\nNote how the projection query (distinct customers) enjoys a much smaller\n"
        "noise scale than the raw three-way join: Section 6's projection-aware\n"
        "residual sensitivity is what makes that possible."
    )


if __name__ == "__main__":
    main()
