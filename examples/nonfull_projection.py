"""Non-full CQs: how the projection changes the privacy/utility trade-off.

Section 6 of the paper extends residual sensitivity to queries with
projections and shows two complementary facts, both demonstrated here:

* **Projections reduce the noise.**  On a warehouse-style instance where each
  join key fans out to many partners, counting *distinct* entities
  (``π_{x1}``) has far smaller residual sensitivity than counting raw join
  results — so the projection-aware mechanism adds far less noise.
* **But the optimality guarantee is lost.**  Theorem 6.4 exhibits an instance
  pair for ``π_{x1}(R1(x1,x2) ⋈ R2(x2))`` forcing ``c·r² >= N`` for any
  ``(r, c)``-neighborhood optimal mechanism; the example prints the implied
  lower bound for several radii.

Run with::

    python examples/nonfull_projection.py
"""

from __future__ import annotations

from repro.engine.evaluation import count_query
from repro.experiments.nonfull import (
    format_nonfull_study,
    projection_gain_instance,
    run_nonfull_study,
    theorem_6_4_instances,
)
from repro.mechanisms.mechanism import PrivateCountingQuery
from repro.query.parser import parse_query


def main() -> None:
    epsilon = 1.0

    # Part 1: the combined study (projection gain + Theorem 6.4 bound).
    rows = run_nonfull_study(configurations=((64, 4), (256, 8), (1024, 16)))
    print(format_nonfull_study(rows))

    # Part 2: release both variants of one concrete query and compare errors.
    gain_db = projection_gain_instance(num_entities=256, groups=8, fanout=256)
    projected = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)", name="distinct_entities")
    full = parse_query("R1(x1, x2), R2(x2, x3)", name="raw_join_size")
    for query in (projected, full):
        true_count = count_query(query, gain_db)
        release = PrivateCountingQuery(query, epsilon=epsilon, rng=0).release(
            gain_db, true_count=true_count
        )
        print(
            f"\n{query.name:17s}: true = {true_count:8d}   "
            f"noisy = {release.noisy_count:12.1f}   expected error = {release.expected_error:10.1f}"
        )

    # Part 3: the Theorem 6.4 instance pair itself.
    dense, sparse = theorem_6_4_instances(256, 8)
    q = parse_query("Q(x1) :- R1(x1, x2), R2(x2)")
    print(
        "\nTheorem 6.4 instances (N=256, r=8): the dense instance answers "
        f"{count_query(q, dense)} everywhere in its r-neighborhood while the sparse "
        f"instance answers {count_query(q, sparse)}; any mechanism accurate on both "
        "neighborhoods must therefore pay c >= N/r^2 = 4."
    )
    print(
        "\nReading: the projection cuts the expected error by roughly the fan-out,\n"
        "but Theorem 6.4 shows no mechanism for projection queries can match the\n"
        "O(1)-neighborhood optimality that full CQs enjoy."
    )


if __name__ == "__main__":
    main()
