"""Graph pattern counting under edge-DP (the paper's evaluation workload).

This example mirrors Section 7 of the paper on a small surrogate of the GrQc
collaboration network: it counts triangles, 3-stars, rectangles and
2-triangles, compares the residual, elastic and (where available) smooth
sensitivities, and releases each count with the residual-sensitivity
mechanism.

Run with::

    python examples/graph_pattern_counting.py [--dataset GrQc] [--scale 0.02]
"""

from __future__ import annotations

import argparse

from repro.datasets import available_datasets, surrogate_database
from repro.experiments.reporting import format_number, format_ratio, render_table
from repro.graphs.patterns import (
    k_star_query,
    rectangle_query,
    triangle_query,
    two_triangle_query,
)
from repro.graphs.statistics import GraphStatistics, pattern_count
from repro.mechanisms.mechanism import PrivateCountingQuery
from repro.sensitivity import (
    ElasticSensitivity,
    ResidualSensitivity,
    StarSmoothSensitivity,
    TriangleSmoothSensitivity,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="GrQc", choices=available_datasets())
    parser.add_argument("--scale", type=float, default=0.02, help="surrogate scale factor")
    parser.add_argument("--epsilon", type=float, default=1.0)
    args = parser.parse_args()

    database = surrogate_database(args.dataset, scale=args.scale)
    stats = GraphStatistics.from_database(database)
    print(
        f"{args.dataset} surrogate: {stats.num_vertices} vertices, "
        f"{stats.num_undirected_edges} undirected edges, max degree {stats.max_degree()}"
    )

    beta = args.epsilon / 10.0
    queries = {
        "triangle": triangle_query(),
        "3-star": k_star_query(3),
        "rectangle": rectangle_query(),
        "2-triangle": two_triangle_query(),
    }
    smooth = {
        "triangle": TriangleSmoothSensitivity(beta=beta),
        "3-star": StarSmoothSensitivity(3, beta=beta),
    }

    rows = []
    for label, query in queries.items():
        count = pattern_count(database, query)
        rs = ResidualSensitivity(query, beta=beta, strategy="eliminate").compute(database)
        es = ElasticSensitivity(query, beta=beta).compute(database)
        ss_value = smooth[label].compute(database).value if label in smooth else None
        release = PrivateCountingQuery(
            query, epsilon=args.epsilon, method="residual", rng=0
        ).release(database, true_count=count)
        rows.append(
            [
                label,
                format_number(count),
                format_number(ss_value, decimals=1) if ss_value is not None else "-",
                format_number(rs.value, decimals=1),
                format_number(es.value, decimals=1),
                format_ratio(es.value, rs.value),
                format_number(release.noisy_count, decimals=1),
            ]
        )

    print()
    print(
        render_table(
            ["pattern", "true count", "SS", "RS", "ES", "ES/RS", "DP release (RS)"],
            rows,
            title=f"Pattern counting on {args.dataset} (epsilon = {args.epsilon})",
        )
    )
    print()
    print(
        "Reading: residual sensitivity tracks smooth sensitivity closely, while\n"
        "elastic sensitivity is orders of magnitude larger on the cyclic patterns —\n"
        "exactly the Table 1 comparison of the paper."
    )


if __name__ == "__main__":
    main()
