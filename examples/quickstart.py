"""Quickstart: release the size of a join query under differential privacy.

This example walks through the minimal end-to-end flow of the library:

1. declare a schema and load a small database,
2. write a conjunctive query in the datalog-style text syntax,
3. inspect the sensitivities the different engines would calibrate noise to,
4. release an ε-DP noisy count with the residual-sensitivity mechanism
   (the paper's `O(1)`-neighborhood-optimal mechanism), and
5. track the privacy budget across several releases.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    PrivacyAccountant,
    PrivateCountingQuery,
    count_query,
    parse_query,
)
from repro.data import Database, DatabaseSchema
from repro.sensitivity import (
    ElasticSensitivity,
    GlobalSensitivityBound,
    ResidualSensitivity,
)


def build_database() -> Database:
    """A small two-table database: visits of users to locations."""
    schema = DatabaseSchema.from_arities({"Visit": 2, "Location": 2})
    return Database.from_rows(
        schema,
        # Visit(user, location)
        Visit=[(u, loc) for u, loc in [(1, 10), (2, 10), (3, 10), (4, 11), (5, 12), (6, 12)]],
        # Location(location, city)
        Location=[(10, 100), (11, 100), (12, 200), (13, 200)],
    )


def main() -> None:
    database = build_database()

    # How many (visit, location) pairs join?  This is the statistic we want
    # to publish under differential privacy.
    query = parse_query("Visit(user, loc), Location(loc, city)", name="visits_with_city")
    true_count = count_query(query, database)
    print(f"query           : {query}")
    print(f"true count      : {true_count}   (never publish this directly!)")

    # Compare the sensitivities the different engines would use (beta = eps/10).
    epsilon = 1.0
    residual = ResidualSensitivity(query, epsilon=epsilon).compute(database)
    elastic = ElasticSensitivity(query, epsilon=epsilon).compute(database)
    global_bound = GlobalSensitivityBound(query).compute(database)
    print(f"residual RS(I)  : {residual.value:.2f}")
    print(f"elastic  ES(I)  : {elastic.value:.2f}")
    print(f"global GS bound : {global_bound.value:.2f}  (relaxed DP, AGM bound)")

    # Release the count with the residual-sensitivity mechanism.
    releaser = PrivateCountingQuery(query, epsilon=epsilon, method="residual", rng=0)
    release = releaser.release(database)
    print(f"noisy count     : {release.noisy_count:.2f}  (eps = {release.epsilon})")
    print(f"expected error  : {release.expected_error:.2f}")

    # Budgeted workload: answer two more queries under a total budget of 3.
    accountant = PrivacyAccountant(total_budget=3.0)
    accountant.charge(epsilon, label="visits_with_city")
    busy_locations = parse_query(
        "Q(loc) :- Visit(user, loc), Location(loc, city)", name="distinct_locations"
    )
    second = accountant.run(
        1.0,
        lambda: PrivateCountingQuery(busy_locations, epsilon=1.0, rng=1).release(database),
        label="distinct_locations",
    )
    print(f"second release  : {second.noisy_count:.2f}  (projection query)")
    print(f"budget remaining: {accountant.remaining:.2f}")


if __name__ == "__main__":
    main()
