"""Pytest root configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. running ``pytest`` straight from a fresh checkout in an
offline environment where ``pip install -e .`` is unavailable).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
