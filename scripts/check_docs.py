#!/usr/bin/env python
"""Validate the markdown docs: every local link must resolve.

Checks, for ``README.md`` and every ``*.md`` under ``docs/``:

* relative links point at files (or directories) that exist in the repo;
* fragment links (``file.md#section`` or ``#section``) name a heading that
  actually exists in the target file (GitHub-style slugs);
* reference-style link definitions are not left dangling.

External (``http://``/``https://``/``mailto:``) links are not fetched — the
checker is deliberately offline so CI stays hermetic.

Exit code 0 when everything resolves; 1 with a per-problem report otherwise.
Run from anywhere: paths are resolved relative to the repository root.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` links; images share the syntax with a leading ``!``.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Fenced code blocks are skipped entirely (shell snippets contain ``(...)``).
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_EXTERNAL = ("http://", "https://", "mailto:")


def _github_slug(heading: str) -> str:
    """The GitHub anchor slug of a heading (close-enough approximation)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s+", "-", text.strip())


def _markdown_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def _links_and_headings(path: Path) -> tuple[list[str], set[str]]:
    links: list[str] = []
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        heading = _HEADING.match(line)
        if heading:
            slugs.add(_github_slug(heading.group(2)))
        links.extend(match.group(1) for match in _INLINE_LINK.finditer(line))
    return links, slugs


def check_docs() -> list[str]:
    """Every problem found, as human-readable strings (empty = all good)."""
    files = _markdown_files()
    headings = {path: _links_and_headings(path)[1] for path in files}
    problems: list[str] = []

    for path in files:
        links, _ = _links_and_headings(path)
        rel = path.relative_to(REPO_ROOT)
        for link in links:
            if link.startswith(_EXTERNAL) or link.startswith("<"):
                continue
            target, _, fragment = link.partition("#")
            if target:
                resolved = (path.parent / target).resolve()
                if not resolved.exists():
                    problems.append(f"{rel}: broken link -> {link}")
                    continue
                if fragment:
                    if resolved.suffix != ".md":
                        continue
                    target_slugs = headings.get(resolved)
                    if target_slugs is None:
                        target_slugs = _links_and_headings(resolved)[1]
                    if fragment not in target_slugs:
                        problems.append(f"{rel}: missing anchor -> {link}")
            elif fragment and fragment not in headings[path]:
                problems.append(f"{rel}: missing anchor -> #{fragment}")
    return problems


def main() -> int:
    files = _markdown_files()
    problems = check_docs()
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown files: {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
