#!/usr/bin/env python
"""End-to-end contract check of the observability stack (used by CI).

Boots a real ``repro-dp serve`` subprocess with ``--log-json`` and
``--slow-ms``, drives a representative request mix over HTTP — session
creation, successful releases (with and without ``timings``), a batch, a
budget denial and an unknown-database error — then:

* scrapes ``GET /metrics`` and validates the body with the strict
  Prometheus text parser (``repro.obs.metrics.parse_prometheus_text``);
* asserts the expected metric families are present and that the request
  counters, latency histogram, ε accounting and denial counters reflect
  the traffic that was actually sent;
* checks the opt-in ``timings`` breakdown sums to its total;
* validates every structured log line against the pinned schema
  (``repro.obs.logs.validate_log_line``);
* asserts ``GET /stats`` carries the observability block.

Exit code 0 when every check passes; 1 with a report otherwise. Run from
anywhere::

    python scripts/check_metrics.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.logs import validate_log_line  # noqa: E402
from repro.obs.metrics import parse_prometheus_text  # noqa: E402

BOOT_TIMEOUT = 30.0
EDGES = [(1, 2), (2, 3), (3, 1), (3, 4), (4, 5)]
TRIANGLE = "Edge(x, y), Edge(y, z), Edge(x, z), x != y, y != z, x != z"

_failures: list[str] = []


def check(condition: bool, message: str) -> None:
    if condition:
        print(f"  ok: {message}")
    else:
        _failures.append(message)
        print(f"  FAIL: {message}")


def request(url: str, payload: dict | None = None) -> tuple[int, dict]:
    data = json.dumps(payload).encode() if payload is not None else None
    try:
        with urllib.request.urlopen(url, data=data, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_for_server(process: subprocess.Popen) -> str:
    """Parse the serve banner for the bound address (``--port 0`` is ephemeral)."""
    deadline = time.monotonic() + BOOT_TIMEOUT
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited before serving (code {process.poll()})"
            )
        sys.stdout.write(f"  serve: {line}")
        if " on http://" in line:
            return line.rsplit(" on ", 1)[1].split()[0]
    raise RuntimeError("server did not print its serving banner in time")


def sample_values(families: dict) -> dict:
    """Flatten parsed families into ``(sample, sorted-label-items) -> value``."""
    return {
        (name, tuple(sorted(labels.items()))): value
        for family in families.values()
        for name, labels, value in family["samples"]
    }


def drive_traffic(base: str) -> None:
    print("driving traffic:")
    status, session = request(f"{base}/budget", {"budget": 2.0})
    check(status == 200, "POST /budget creates a session")
    session_id = session["session"]

    status, body = request(
        f"{base}/count", {"database": "wire", "query": TRIANGLE, "epsilon": 0.5}
    )
    check(status == 200 and "noisy_count" in body, "POST /count releases a count")
    check("timings" not in body, "timings stay opt-in")

    status, body = request(
        f"{base}/count",
        {"database": "wire", "query": TRIANGLE, "epsilon": 0.25, "timings": True},
    )
    check(status == 200 and body.get("trace_id"), "timings=true returns a trace_id")
    stages = body.get("timings") or {}
    parts = sum(v for k, v in stages.items() if k != "total")
    check(
        bool(stages) and abs(parts - stages["total"]) < 1e-6,
        "stage timings sum to the reported total",
    )

    status, body = request(
        f"{base}/batch",
        {
            "database": "wire",
            "requests": [
                {"query": TRIANGLE, "epsilon": 0.1},
                {"query": TRIANGLE, "epsilon": 0.1},
            ],
        },
    )
    check(
        status == 200 and body.get("deduplicated") == 1,
        "POST /batch deduplicates repeated shapes",
    )

    status, _ = request(
        f"{base}/count", {"database": "missing", "query": TRIANGLE, "epsilon": 0.5}
    )
    check(status == 404, "unknown database is a 404 error")

    status, _ = request(
        f"{base}/count",
        {"database": "wire", "query": TRIANGLE, "epsilon": 99.0, "session": session_id},
    )
    check(status == 403, "over-budget request is a 403 denial")


def check_metrics(base: str) -> None:
    print("checking /metrics:")
    with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
        check(response.status == 200, "GET /metrics answers 200")
        content_type = response.headers.get("Content-Type", "")
        check(content_type.startswith("text/plain"), "content type is text/plain")
        text = response.read().decode("utf-8")
    families = parse_prometheus_text(text)  # raises on malformed exposition
    print(f"  ok: exposition parses ({len(families)} metric families)")

    for family in (
        "repro_requests_total",
        "repro_request_seconds",
        "repro_cache_requests_total",
        "repro_epsilon_charged_total",
        "repro_budget_denials_total",
        "repro_budget_charge_seconds",
        "repro_batch_items_total",
        "repro_slow_requests_total",
        "repro_profiler_profiles_total",
        "repro_profiler_components_total",
        "repro_sessions_active",
        "repro_audit_records_total",
        "repro_shared_budget_remaining_epsilon",
    ):
        check(family in families, f"family {family} is exposed")

    values = sample_values(families)
    # 2 direct /count releases + 1 deduplicated batch group (batch groups
    # run through the same count core, so they are served count requests).
    ok_counts = values.get(
        ("repro_requests_total", (("endpoint", "count"), ("status", "ok"))), 0.0
    )
    check(ok_counts == 3.0, f"3 ok count requests counted (saw {ok_counts})")
    errors = values.get(
        ("repro_requests_total", (("endpoint", "count"), ("status", "error"))), 0.0
    )
    check(errors == 2.0, f"2 errored /count requests counted (saw {errors})")
    # The latency histogram observes error requests too: 3 ok + 2 errors.
    latency = values.get(
        ("repro_request_seconds_count", (("endpoint", "count"),)), 0.0
    )
    check(latency == 5.0, f"latency histogram observed 5 requests (saw {latency})")
    # 0.5 + 0.25 from /count, 0.1 for the deduplicated batch group.
    charged = values.get(("repro_epsilon_charged_total", ()), 0.0)
    check(abs(charged - 0.85) < 1e-9, f"epsilon accounting adds up (saw {charged})")
    denials = values.get(
        ("repro_budget_denials_total", (("endpoint", "count"),)), 0.0
    )
    check(denials == 1.0, f"1 budget denial counted (saw {denials})")
    dedup = values.get(
        ("repro_batch_items_total", (("outcome", "deduplicated"),)), 0.0
    )
    check(dedup == 1.0, f"1 deduplicated batch item counted (saw {dedup})")
    sessions = values.get(("repro_sessions_active", ()), 0.0)
    check(sessions == 1.0, f"1 active session gauged (saw {sessions})")


def check_stats(base: str) -> None:
    print("checking /stats:")
    status, stats = request(f"{base}/stats")
    check(status == 200, "GET /stats answers 200")
    observability = stats.get("observability") or {}
    check(observability.get("enabled") is True, "observability block is enabled")
    check(observability.get("log_lines_written", 0) >= 5, "log lines were written")
    check(
        "repro_requests_total" in observability.get("metrics", []),
        "declared metric names are listed",
    )
    check(stats.get("epsilon_charged") == 0.85, "stats epsilon_charged matches")


def check_logs(log_path: Path) -> None:
    print("checking structured logs:")
    lines = log_path.read_text(encoding="utf-8").splitlines()
    check(len(lines) >= 5, f"one log line per request (saw {len(lines)})")
    statuses: list[str] = []
    try:
        for line in lines:
            record = validate_log_line(line)
            statuses.append(record["status"])
    except ValueError as error:
        check(False, f"log line validates against the pinned schema: {error}")
    else:
        print(f"  ok: all {len(lines)} log lines validate against the pinned schema")
    check("error" in statuses, "error requests are logged")
    # --slow-ms 0 marks every completed request slow.
    check(
        any(json.loads(line)["slow"] for line in lines),
        "slow marking is applied",
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        edge_file = Path(tmp) / "wire.txt"
        edge_file.write_text("".join(f"{u} {v}\n" for u, v in EDGES))
        log_path = Path(tmp) / "requests.jsonl"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--edge-file", str(edge_file), "--name", "wire",
                "--port", "0", "--seed", "0",
                "--session-budget", "2.0", "--total-budget", "10.0",
                "--log-json", str(log_path), "--slow-ms", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
            cwd=ROOT,
        )
        try:
            base = wait_for_server(process)
            drive_traffic(base)
            check_metrics(base)
            check_stats(base)
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        check_logs(log_path)

    if _failures:
        print(f"\n{len(_failures)} check(s) FAILED:")
        for failure in _failures:
            print(f"  - {failure}")
        return 1
    print("\nall observability checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
