#!/usr/bin/env python
"""Write compact benchmark snapshots (``BENCH_<area>.json``) at the repo root.

This is the committed perf trajectory: each run re-executes the gated
benchmark workloads — backend join speedup (``benchmarks/bench_backend.py``),
serving-layer cache speedup, warm latency and instrumentation overhead
(``benchmarks/bench_service.py``), and the shared-lattice profiler speedup
(``benchmarks/bench_profile.py``) — and records the headline numbers in a
small, diffable JSON document per area.  Workloads are reproduced
bit-for-bit from ``REPRO_BENCH_SEED`` (default 0) via the same
``derive_seed`` streams the pytest benchmarks use, so successive snapshots
are comparable across commits; wall-clock numbers still move with the host,
which is why each snapshot records its environment.

Run::

    python scripts/bench_snapshot.py              # all areas
    python scripts/bench_snapshot.py --area service
    python scripts/bench_snapshot.py --output-dir /tmp/bench

CI uploads the refreshed snapshots as artifacts from the benchmark jobs
(see .github/workflows); committed baselines live at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (ROOT / "src", ROOT / "benchmarks"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from bench_utils import derive_seed, seed_record  # noqa: E402

AREAS = ("backend", "service", "profile", "concurrency", "mutation")


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def _median_of(samples: list) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def snapshot_backend() -> dict:
    """Large-join counting: python vs numpy backend (cold + warm)."""
    import bench_backend as bb

    from repro.engine import kernels

    db = bb._large_join_db()
    python_time, python_count = bb._timed_count("python", db)
    numpy_cold_time, numpy_count = bb._timed_count("numpy", db)
    assert numpy_count == python_count
    warm = min(bb._timed_count("numpy", db)[0] for _ in range(3))

    # The compiled kernel tier: status always recorded; the join timing only
    # with real JIT kernels (interpreted mode would just benchmark CPython).
    kernel_block: dict = {"status": kernels.kernel_status()}
    if kernels.kernel_mode() == "jit":
        kernels.warm_up()
        compiled_time, compiled_count = bb._timed_count("compiled", db)
        assert compiled_count == python_count
        compiled_warm = min(bb._timed_count("compiled", db)[0] for _ in range(3))
        kernel_block["results"] = {
            "compiled_cold_seconds": round(compiled_time, 6),
            "compiled_warm_seconds": round(compiled_warm, 6),
            "compiled_vs_numpy_warm": round(warm / compiled_warm, 2),
        }
    return {
        "kernels": kernel_block,
        "workload": {
            "query": "R(x, y), S(y, z)",
            "tuples_per_relation": bb.TUPLES,
            "distinct_keys": bb.KEYS,
            "join_count": python_count,
        },
        "results": {
            "python_seconds": round(python_time, 6),
            "numpy_cold_seconds": round(numpy_cold_time, 6),
            "numpy_warm_seconds": round(warm, 6),
            "speedup_cold": round(python_time / numpy_cold_time, 2),
            "speedup_warm": round(python_time / warm, 2),
        },
    }


def snapshot_service() -> dict:
    """Serving layer: cache speedup, warm latency, instrumentation overhead."""
    import bench_service as bs
    from repro.graphs.generators import collaboration_graph
    from repro.graphs.loader import database_from_networkx
    from repro.service.service import PrivateQueryService

    graph_db = database_from_networkx(
        collaboration_graph(200, 8.0, seed=derive_seed("service.graph"))
    )
    uncached_time, uncached = bs._run_repeated(graph_db, cache_capacity=0)
    cached_time, cached = bs._run_repeated(graph_db, cache_capacity=64)
    assert [r.noisy_count for r in cached] == [r.noisy_count for r in uncached]

    service = PrivateQueryService(
        session_budget=1e9, cache_capacity=64, rng=derive_seed("service.noise")
    )
    service.register_database("g", graph_db)
    service.count("g", bs.TRIANGLE, epsilon=0.5)
    calls = 200
    samples = []
    for _ in range(10):
        start = time.perf_counter()
        for _ in range(calls):
            service.count("g", bs.TRIANGLE, epsilon=0.5)
        samples.append((time.perf_counter() - start) / calls)
    warm_latency = min(samples)
    overhead = bs.measure_observability_overhead(graph_db)
    return {
        "workload": {
            "query": bs.TRIANGLE,
            "graph_nodes": 200,
            "graph_average_degree": 8.0,
            "repeats": bs.REPEATS,
        },
        "results": {
            "uncached_seconds": round(uncached_time, 6),
            "cached_seconds": round(cached_time, 6),
            "cache_speedup": round(uncached_time / cached_time, 2),
            "warm_release_microseconds": round(warm_latency * 1e6, 2),
            "observability_overhead_percent": round(overhead * 100, 2),
        },
    }


def snapshot_profile() -> dict:
    """Shared-lattice profiler vs the per-subset baseline (4-star query)."""
    import bench_profile as bp
    from repro.graphs.generators import collaboration_graph
    from repro.graphs.loader import database_from_networkx
    from repro.graphs.patterns import k_star_query
    from repro.sensitivity.residual import ResidualSensitivity

    graph_db = database_from_networkx(
        collaboration_graph(
            bp.NUM_NODES, bp.AVERAGE_DEGREE, seed=derive_seed("profile.graph")
        )
    )
    from repro.engine.procpool import get_process_pool, shutdown_process_pool

    engine = ResidualSensitivity(k_star_query(4), beta=0.1, backend=bp.BACKEND)
    _, shared, baseline_time, shared_time = bp._compare(engine, graph_db)
    stats = shared.stats

    # The GIL-escape comparison: concurrent profiles through the shared
    # process pool vs the thread default (see
    # bench_profile.test_profile_process_speedup_star4).  Only gated on
    # ≥2-core machines, but always recorded with the core count so the
    # trajectory stays interpretable.
    query = k_star_query(4)
    subsets = engine.required_subsets(graph_db)
    get_process_pool(None)
    thread_time, _ = bp.measure_concurrent_profiles(query, graph_db, subsets, None)
    process_time, _ = bp.measure_concurrent_profiles(
        query, graph_db, subsets, "process"
    )
    shutdown_process_pool()

    # Compiled-kernel star4 profile vs numpy — the trend baseline for
    # bench_profile.test_profile_compiled_speedup_star4.  JIT mode only:
    # without numba the metric is absent and the trend gate falls back to
    # its fixed 2x floor.
    from repro.engine import kernels

    compiled_results: dict = {}
    if kernels.kernel_mode() == "jit":
        kernels.warm_up()
        start = time.perf_counter()
        compiled_profile = ResidualSensitivity(
            k_star_query(4), beta=0.1, backend="compiled"
        ).profile(graph_db)
        compiled_time = time.perf_counter() - start
        for kept, reference in shared.results.items():
            result = compiled_profile.results[kept]
            assert (result.value, result.exact) == (reference.value, reference.exact)
        compiled_results = {
            "compiled_seconds": round(compiled_time, 6),
            "compiled_speedup": round(shared_time / compiled_time, 2),
        }
    return {
        "workload": {
            "query": "star4",
            "graph_nodes": bp.NUM_NODES,
            "graph_average_degree": bp.AVERAGE_DEGREE,
            "backend": bp.BACKEND,
            "concurrent_profiles": bp.CONCURRENT_PROFILES,
        },
        "results": {
            "per_subset_seconds": round(baseline_time, 6),
            "shared_lattice_seconds": round(shared_time, 6),
            "speedup": round(baseline_time / shared_time, 2),
            "concurrent_thread_seconds": round(thread_time, 6),
            "concurrent_process_seconds": round(process_time, 6),
            "process_speedup": round(thread_time / process_time, 2),
            "process_speedup_cores": os.cpu_count(),
            "subsets_total": stats.subsets_total,
            "components_evaluated": stats.components_evaluated,
            "component_dedup_hits": stats.component_hits,
            "factorization_hits": stats.factorization_hits,
            "factorization_misses": stats.factorization_misses,
            **compiled_results,
        },
    }


def snapshot_concurrency() -> dict:
    """Charge pipeline under load: journal overhead + prefork HTTP scaling."""
    import bench_concurrency as bc
    from repro.graphs.generators import collaboration_graph
    from repro.graphs.loader import database_from_networkx

    graph_db = database_from_networkx(
        collaboration_graph(150, 6.0, seed=derive_seed("concurrency.graph"))
    )

    def run(**kwargs):
        service = bc._warm_service(graph_db, **kwargs)
        session = service.create_session(budget=1e6).session_id
        start = time.perf_counter()
        for _ in range(2 * bc.THREADS * bc.ROUNDS):
            service.count("g", bc.PATH2, epsilon=0.5, session=session)
        return time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-conc-") as tmp:
        in_memory = run()
        journaled = run(state_dir=str(Path(tmp) / "journal"), snapshot_interval=100)

        edge_file = Path(tmp) / "edges.txt"
        edge_file.write_text(bc._EDGES)
        single = bc.measure_cluster_throughput(
            1, str(Path(tmp) / "st1"), str(edge_file)
        )
        quad = bc.measure_cluster_throughput(
            4, str(Path(tmp) / "st4"), str(edge_file)
        )
    return {
        "workload": {
            "query": bc.PATH2,
            "graph_nodes": 150,
            "graph_average_degree": 6.0,
            "journaled_releases": 2 * bc.THREADS * bc.ROUNDS,
            "http_clients": 4,
            "http_requests_per_client": 60,
        },
        "results": {
            "in_memory_seconds": round(in_memory, 6),
            "journaled_seconds": round(journaled, 6),
            "journal_overhead_ratio": round(journaled / in_memory, 2),
            "http_rps_1_worker": round(single, 1),
            "http_rps_4_workers": round(quad, 1),
            "cluster_scaling_x": round(quad / single, 2),
        },
    }


def snapshot_mutation() -> dict:
    """Delta mutation (one-tuple update + re-query) vs full re-registration."""
    import bench_mutation as bm

    measured = bm.measure_mutation_speedup(bm.mutation_db())
    assert measured["delta_release"].noisy_count == measured["reregister_release"].noisy_count
    return {
        "workload": {
            "query": bm.QUERY,
            "graph_nodes": bm.NUM_NODES,
            "graph_average_degree": bm.AVERAGE_DEGREE,
            "update": "one Member tuple replaced",
        },
        "results": {
            "delta_seconds": round(measured["delta_seconds"], 6),
            "reregister_seconds": round(measured["reregister_seconds"], 6),
            "delta_speedup": round(measured["speedup"], 2),
            "component_cache_hits": measured["component_cache_hits"],
            "factorization_hits": measured["factorization"]["hits"],
            "factorization_misses": measured["factorization"]["misses"],
        },
    }


SNAPSHOTTERS = {
    "backend": snapshot_backend,
    "service": snapshot_service,
    "profile": snapshot_profile,
    "concurrency": snapshot_concurrency,
    "mutation": snapshot_mutation,
}


def write_snapshot(area: str, output_dir: Path) -> Path:
    document = {
        "area": area,
        "seed": seed_record(),
        "environment": _environment(),
        **SNAPSHOTTERS[area](),
    }
    path = output_dir / f"BENCH_{area}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--area", choices=(*AREAS, "all"), default="all",
        help="which benchmark area to snapshot (default: all)",
    )
    parser.add_argument(
        "--output-dir", type=Path, default=ROOT,
        help="directory for the BENCH_<area>.json files (default: repo root)",
    )
    args = parser.parse_args(argv)
    areas = AREAS if args.area == "all" else (args.area,)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    for area in areas:
        started = time.perf_counter()
        path = write_snapshot(area, args.output_dir)
        print(f"{area}: wrote {path} ({time.perf_counter() - started:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
